#include "core/report.hpp"

#include <gtest/gtest.h>

#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest()
      : campaign_(testdata::PaperCampaign()),
        circuit_(testdata::PaperCircuit()),
        optimizer_(circuit_, campaign_) {}

  CampaignResult campaign_;
  DftCircuit circuit_;
  DftOptimizer optimizer_;
};

TEST_F(ReportTest, ConfigurationTableListsAllRows) {
  auto space = circuit_.Space();
  std::string out = RenderConfigurationTable(space);
  EXPECT_NE(out.find("C0"), std::string::npos);
  EXPECT_NE(out.find("C7"), std::string::npos);
  EXPECT_NE(out.find("Funct. Conf"), std::string::npos);
  EXPECT_NE(out.find("Transp. Conf"), std::string::npos);
  EXPECT_NE(out.find("New Test Conf"), std::string::npos);
  EXPECT_NE(out.find("101"), std::string::npos);
}

TEST_F(ReportTest, DetectabilityMatrixShowsOnesAndZeros) {
  std::string out = RenderDetectabilityMatrix(campaign_);
  EXPECT_NE(out.find("fR1"), std::string::npos);
  EXPECT_NE(out.find("fC2"), std::string::npos);
  EXPECT_NE(out.find("| C6"), std::string::npos);
  EXPECT_NE(out.find(" 1 "), std::string::npos);
  EXPECT_NE(out.find(" 0 "), std::string::npos);
}

TEST_F(ReportTest, OmegaTableMarksPerFaultBest) {
  std::string out = RenderOmegaTable(campaign_, true);
  // fR5/fR6 best is 100 in C3.
  EXPECT_NE(out.find("100*"), std::string::npos);
  // Row averages column present.
  EXPECT_NE(out.find("<w-det>"), std::string::npos);
  std::string plain = RenderOmegaTable(campaign_, false);
  EXPECT_EQ(plain.find("100*"), std::string::npos);
}

TEST_F(ReportTest, MappingTableMatchesTable3) {
  std::string out = RenderMappingTable(circuit_.Space());
  EXPECT_NE(out.find("OP1.OP3"), std::string::npos);       // C5
  EXPECT_NE(out.find("OP1.OP2.OP3"), std::string::npos);   // C7
  EXPECT_NE(out.find("-"), std::string::npos);             // C0
}

TEST_F(ReportTest, FundamentalNarrativeShowsExpressions) {
  auto f = optimizer_.SolveFundamental();
  std::string out = RenderFundamental(f, campaign_);
  EXPECT_NE(out.find("xi"), std::string::npos);
  EXPECT_NE(out.find("(C2)"), std::string::npos);          // essential factor
  EXPECT_NE(out.find("C2.C5"), std::string::npos);         // SOP term
  EXPECT_NE(out.find("max fault coverage = 100%"), std::string::npos);
}

TEST_F(ReportTest, SelectionShowsWinner) {
  auto sel = optimizer_.OptimizeConfigurationCount();
  std::string out = RenderSelection(sel, campaign_);
  EXPECT_NE(out.find("S_opt = {C2, C5}"), std::string::npos);
  EXPECT_NE(out.find("32.5"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("<== S_opt"), std::string::npos);
}

TEST_F(ReportTest, PartialDftReport) {
  auto part = optimizer_.OptimizePartialDft();
  std::string out = RenderPartialDft(part, campaign_, circuit_);
  EXPECT_NE(out.find("2 of 3"), std::string::npos);
  EXPECT_NE(out.find("52.5"), std::string::npos);
  EXPECT_NE(out.find("permitted configurations: C0 C1 C2 C3"),
            std::string::npos);
}

TEST_F(ReportTest, OmegaBarsRendersSeries) {
  std::vector<double> initial(8, 0.1), brute(8, 0.6);
  std::string out = RenderOmegaBars(
      campaign_.Faults(),
      {{"initial", initial}, {"brute force", brute}}, "Graph 2");
  EXPECT_NE(out.find("Graph 2"), std::string::npos);
  EXPECT_NE(out.find("initial"), std::string::npos);
  EXPECT_NE(out.find("fR1"), std::string::npos);
  EXPECT_NE(out.find("<w-det> averages"), std::string::npos);
}

TEST_F(ReportTest, OmegaBarsRejectsWrongLength) {
  EXPECT_THROW(RenderOmegaBars(campaign_.Faults(), {{"x", {0.1}}}, "t"),
               util::AnalysisError);
}

TEST_F(ReportTest, RowNamesAndSets) {
  EXPECT_EQ(RowName(campaign_, 5), "C5");
  EXPECT_EQ(RowSetName(campaign_, boolcov::Cube(7, {2, 5})), "{C2, C5}");
  EXPECT_EQ(RowSetName(campaign_, boolcov::Cube(7)), "{}");
}

}  // namespace
}  // namespace mcdft::core
