// Determinism regression: a campaign's detectability matrix, omega table,
// thresholds and nominal responses must be BIT-identical for any thread
// count (static partitioning + ordered reductions, see DESIGN.md).  Runs
// the biquad and the 6-opamp cascade at thread counts 1, 2 and 8, plus a
// single-configuration pass over the rest of the circuit zoo.
//
// Thread counts are varied through CampaignOptions::threads — the
// MCDFT_THREADS environment variable is latched at first use and cannot be
// changed within a process.
#include <gtest/gtest.h>

#include "circuits/zoo.hpp"
#include "core/campaign.hpp"
#include "faults/fault_list.hpp"

namespace mcdft::core {
namespace {

CampaignOptions FastOptions(std::size_t threads) {
  CampaignOptions options = MakePaperCampaignOptions();
  options.points_per_decade = 5;   // keep the test quick; grid shape is
  options.tolerance->samples = 6;  // irrelevant to the determinism claim
  options.threads = threads;
  return options;
}

std::vector<ConfigVector> SmallConfigSet(const DftCircuit& circuit) {
  auto space = circuit.Space();
  std::vector<ConfigVector> configs = space.OpampCount() > 5
                                          ? space.UpToKFollowers(1)
                                          : space.UpToKFollowers(2);
  std::erase_if(configs,
                [](const ConfigVector& cv) { return cv.IsTransparent(); });
  return configs;
}

/// Bitwise comparison of two campaign runs of the same circuit.
void ExpectBitIdentical(const CampaignResult& a, const CampaignResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.ConfigCount(), b.ConfigCount()) << what;
  ASSERT_EQ(a.FaultCount(), b.FaultCount()) << what;
  EXPECT_EQ(a.DetectabilityMatrix(), b.DetectabilityMatrix()) << what;

  const auto omega_a = a.OmegaTable();
  const auto omega_b = b.OmegaTable();
  for (std::size_t i = 0; i < omega_a.size(); ++i) {
    for (std::size_t j = 0; j < omega_a[i].size(); ++j) {
      // EXPECT_EQ on doubles: bit-identical, not merely close.
      EXPECT_EQ(omega_a[i][j], omega_b[i][j])
          << what << " omega[" << i << "][" << j << "]";
    }
  }
  for (std::size_t i = 0; i < a.ConfigCount(); ++i) {
    const ConfigResult& ra = a.PerConfig()[i];
    const ConfigResult& rb = b.PerConfig()[i];
    EXPECT_EQ(ra.config, rb.config) << what;
    EXPECT_EQ(ra.threshold, rb.threshold) << what << " threshold row " << i;
    ASSERT_EQ(ra.nominal.PointCount(), rb.nominal.PointCount()) << what;
    for (std::size_t p = 0; p < ra.nominal.PointCount(); ++p) {
      EXPECT_EQ(ra.nominal.values[p], rb.nominal.values[p])
          << what << " nominal row " << i << " point " << p;
    }
  }
}

void CheckCircuitAcrossThreadCounts(const char* name) {
  const auto& entry = circuits::FindInZoo(name);
  auto block = entry.build();
  const DftCircuit circuit = DftCircuit::Transform(block);
  const auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  const auto configs = SmallConfigSet(circuit);

  const CampaignResult serial =
      RunCampaign(circuit, fault_list, configs, FastOptions(1));
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const CampaignResult parallel =
        RunCampaign(circuit, fault_list, configs, FastOptions(threads));
    ExpectBitIdentical(serial, parallel,
                       std::string(name) + " @" + std::to_string(threads) +
                           " threads");
  }
}

TEST(CampaignDeterminism, BiquadBitIdenticalAcrossThreadCounts) {
  CheckCircuitAcrossThreadCounts("biquad");
}

TEST(CampaignDeterminism, Cascade6BitIdenticalAcrossThreadCounts) {
  CheckCircuitAcrossThreadCounts("cascade6");
}

TEST(CampaignDeterminism, ZooSingleConfigBitIdentical) {
  // Broad but shallow: every other zoo circuit, functional configuration
  // only, serial vs 8 threads (the envelope still parallelizes inside).
  for (const auto& entry : circuits::Zoo()) {
    const std::string& name = entry.name;
    if (name == "biquad" || name == "cascade6") continue;  // covered above
    auto block = entry.build();
    const DftCircuit circuit = DftCircuit::Transform(block);
    const auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
    const std::vector<ConfigVector> configs{
        ConfigVector(circuit.ConfigurableOpamps().size())};
    const CampaignResult serial =
        RunCampaign(circuit, fault_list, configs, FastOptions(1));
    const CampaignResult parallel =
        RunCampaign(circuit, fault_list, configs, FastOptions(8));
    ExpectBitIdentical(serial, parallel, name);
  }
}

}  // namespace
}  // namespace mcdft::core
