#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace mcdft::util {
namespace {

CliArgs Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SpaceSeparatedValue) {
  auto a = Make({"--circuit", "biquad"});
  EXPECT_TRUE(a.Has("circuit"));
  EXPECT_EQ(a.GetString("circuit", ""), "biquad");
}

TEST(CliArgs, EqualsSeparatedValue) {
  auto a = Make({"--eps=0.1"});
  EXPECT_DOUBLE_EQ(a.GetDouble("eps", 0.0), 0.1);
}

TEST(CliArgs, BooleanFlag) {
  auto a = Make({"--verbose"});
  EXPECT_TRUE(a.Has("verbose"));
  EXPECT_EQ(a.GetString("verbose", "x"), "");
}

TEST(CliArgs, EngineeringValues) {
  auto a = Make({"--f0", "1k"});
  EXPECT_DOUBLE_EQ(a.GetDouble("f0", 0.0), 1000.0);
}

TEST(CliArgs, IntValues) {
  auto a = Make({"--n=42"});
  EXPECT_EQ(a.GetInt("n", 0), 42);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  auto a = Make({});
  EXPECT_FALSE(a.Has("x"));
  EXPECT_EQ(a.GetString("x", "def"), "def");
  EXPECT_DOUBLE_EQ(a.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(a.GetInt("x", 7), 7);
}

TEST(CliArgs, PositionalArguments) {
  auto a = Make({"file1", "--opt", "v", "file2"});
  ASSERT_EQ(a.Positional().size(), 2u);
  EXPECT_EQ(a.Positional()[0], "file1");
  EXPECT_EQ(a.Positional()[1], "file2");
}

TEST(CliArgs, UnparsableDoubleFallsBack) {
  auto a = Make({"--eps", "abc"});
  EXPECT_DOUBLE_EQ(a.GetDouble("eps", 9.0), 9.0);
}

TEST(CliArgs, FlagFollowedByFlag) {
  auto a = Make({"--a", "--b", "val"});
  EXPECT_TRUE(a.Has("a"));
  EXPECT_EQ(a.GetString("a", "x"), "");
  EXPECT_EQ(a.GetString("b", ""), "val");
}

}  // namespace
}  // namespace mcdft::util
