// Randomized writer -> parser round-trip: generate random (valid) netlists
// programmatically, serialize them, parse them back, and verify the two
// netlists are electrically identical (same AC solution at random
// frequencies) and structurally equivalent.
#include <gtest/gtest.h>

#include <random>

#include "spice/elements.hpp"
#include "spice/mna.hpp"
#include "spice/parser.hpp"
#include "spice/writer.hpp"

namespace mcdft::spice {
namespace {

/// Random connected netlist: a chain of nodes from "in" to ground with
/// random elements bridging random node pairs; always includes a source
/// and a resistive path to ground at every node (keeps MNA regular).
Netlist RandomNetlist(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> logval(-1.0, 1.0);
  auto rand_r = [&] { return 1e3 * std::pow(10.0, logval(rng)); };
  auto rand_c = [&] { return 1e-9 * std::pow(10.0, logval(rng)); };
  auto rand_l = [&] { return 1e-3 * std::pow(10.0, logval(rng)); };

  const std::size_t nnodes = 3 + rng() % 5;  // n0 .. n{k}
  Netlist nl("fuzz");
  auto node_name = [&](std::size_t i) {
    return i == 0 ? std::string("in") : "n" + std::to_string(i);
  };
  nl.AddVoltageSource("V1", "in", "0", 1.0, 1.0);
  // Spine of resistors guaranteeing ground connectivity.
  for (std::size_t i = 0; i < nnodes; ++i) {
    nl.AddResistor("RS" + std::to_string(i), node_name(i),
                   i + 1 < nnodes ? node_name(i + 1) : "0", rand_r());
  }
  // Random extra elements.
  const std::size_t extras = 2 + rng() % 6;
  for (std::size_t e = 0; e < extras; ++e) {
    const std::string a = node_name(rng() % nnodes);
    std::string b = node_name(rng() % nnodes);
    if (a == b) b = "0";
    const std::string id = std::to_string(e);
    switch (rng() % 4) {
      case 0: nl.AddResistor("RX" + id, a, b, rand_r()); break;
      case 1: nl.AddCapacitor("CX" + id, a, b, rand_c()); break;
      case 2: nl.AddInductor("LX" + id, a, b, rand_l()); break;
      case 3:
        nl.AddVcvs("EX" + id, "e" + id, "0", a, b, logval(rng));
        nl.AddResistor("RE" + id, "e" + id, "0", rand_r());
        break;
    }
  }
  return nl;
}

class RoundTripFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzzTest, WriteParseWriteIsStable) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Netlist original = RandomNetlist(rng);
    const std::string deck1 = WriteDeck(original);
    ParsedDeck reparsed = ParseDeck(deck1);
    const std::string deck2 = WriteDeck(reparsed.netlist);
    // Idempotence: the second serialization is byte-identical.
    EXPECT_EQ(deck1, deck2) << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(RoundTripFuzzTest, ParsedNetlistIsElectricallyIdentical) {
  std::mt19937_64 rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 5; ++trial) {
    Netlist original = RandomNetlist(rng);
    ParsedDeck reparsed = ParseDeck(WriteDeck(original));
    ASSERT_EQ(reparsed.netlist.ElementCount(), original.ElementCount());
    MnaSystem sys1(original);
    MnaSystem sys2(reparsed.netlist);
    for (double f : {13.0, 1.7e3, 420e3}) {
      auto s1 = sys1.SolveAcHz(f);
      auto s2 = sys2.SolveAcHz(f);
      for (NodeId n = 1; n < original.NodeCount(); ++n) {
        const NodeId n2 = reparsed.netlist.FindNode(original.NodeName(n));
        // Values pass through engineering formatting (4 significant
        // digits), so allow a small relative error.
        EXPECT_NEAR(std::abs(s1.VoltageAt(n) - s2.VoltageAt(n2)), 0.0,
                    2e-3 * (std::abs(s1.VoltageAt(n)) + 1.0))
            << "f=" << f << " node=" << original.NodeName(n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParserFuzz, GarbageInputsThrowCleanly) {
  // Every malformed deck must throw a typed error, never crash or accept.
  const char* bad[] = {
      "R1\n",
      "R1 a\n",
      "R1 a b\n",
      "V1 a 0 DC\n",
      "E1 a 0 b\n",
      "O1 a\n",
      "X1\n",
      ".ac\n",
      ".ac dec\n",
      ".ac dec five 1 10\n",
      ".probe\nR1 a 0 1\n.probe v(\n",
      // A garbage *second* line is an error (the first would be a title).
      ".title t\n\x01\x02\x03 a b c\n",
  };
  for (const char* deck : bad) {
    EXPECT_THROW(ParseDeck(deck), util::Error) << deck;
  }
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  std::mt19937_64 rng(99);
  const char* tokens[] = {"R1", "C2",  "a",   "b",    "0",   "1k",  "2.2n",
                          ".ac", "dec", "X1",  ".subckt", ".ends", "V1",
                          "AC",  "DC",  "O1",  "A0=1e6",  "+",     "v(a)"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string deck;
    const std::size_t lines = 1 + rng() % 6;
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t words = 1 + rng() % 6;
      for (std::size_t w = 0; w < words; ++w) {
        deck += tokens[rng() % std::size(tokens)];
        deck += " ";
      }
      deck += "\n";
    }
    try {
      ParseDeck(deck);  // accepting is fine; crashing is not
    } catch (const util::Error&) {
      // expected for most random soups
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace mcdft::spice
