#include "boolcov/petrick.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mcdft::boolcov {
namespace {

std::string Name(std::size_t v) { return "C" + std::to_string(v); }

/// Check that `term` satisfies every clause of `problem`.
bool Satisfies(const Cube& term, const CoverProblem& problem) {
  for (const auto& clause : problem.Clauses()) {
    if (term.Intersect(clause.literals).Empty()) return false;
  }
  return true;
}

TEST(Petrick, PaperReducedExpression) {
  // xi_compl = (C1+C4+C5).(C1+C5) from the paper's Fig. 6; the minimal
  // solutions are C1 and C5 (C4 only appears in dominated products).
  CoverProblem p(7);
  p.AddClause({Cube(7, {1, 4, 5}), "fR3"});
  p.AddClause({Cube(7, {1, 5}), "fC2"});
  auto sop = PetrickMinimalProducts(p);
  ASSERT_EQ(sop.size(), 2u);
  EXPECT_EQ(sop[0].Variables(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(sop[1].Variables(), (std::vector<std::size_t>{5}));
}

TEST(Petrick, PaperRawExpansionContainsAllFiveProducts) {
  // The paper lists xi = C1.C2 + C1.C2.C5 + C1.C2.C4 + C2.C4.C5 + C2.C5
  // before absorption.  Expanding (C2).(C1+C4+C5).(C1+C5) raw must contain
  // those products (after dedup).
  CoverProblem p(7);
  p.AddClause({Cube(7, {2}), "ess"});
  p.AddClause({Cube(7, {1, 4, 5}), "fR3"});
  p.AddClause({Cube(7, {1, 5}), "fC2"});
  auto raw = PetrickRawExpansion(p);
  auto contains = [&](std::initializer_list<std::size_t> vars) {
    Cube c(7);
    for (auto v : vars) c.Set(v);
    return std::find(raw.begin(), raw.end(), c) != raw.end();
  };
  EXPECT_TRUE(contains({1, 2}));
  EXPECT_TRUE(contains({1, 2, 5}));
  EXPECT_TRUE(contains({1, 2, 4}));
  EXPECT_TRUE(contains({2, 4, 5}));
  EXPECT_TRUE(contains({2, 5}));
  EXPECT_EQ(raw.size(), 5u);
}

TEST(Petrick, PaperAbsorbedExpansion) {
  // After absorption only C2.C1 and C2.C5 remain (the paper's two minimal
  // test configuration sets, Sec. 4.2).
  CoverProblem p(7);
  p.AddClause({Cube(7, {2}), "ess"});
  p.AddClause({Cube(7, {1, 4, 5}), "fR3"});
  p.AddClause({Cube(7, {1, 5}), "fC2"});
  auto sop = PetrickMinimalProducts(p);
  ASSERT_EQ(sop.size(), 2u);
  EXPECT_EQ(sop[0].Variables(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(sop[1].Variables(), (std::vector<std::size_t>{2, 5}));
}

TEST(Petrick, SingleClause) {
  CoverProblem p(3);
  p.AddClause({Cube(3, {0, 2}), "x"});
  auto sop = PetrickMinimalProducts(p);
  ASSERT_EQ(sop.size(), 2u);
  EXPECT_EQ(sop[0].LiteralCount(), 1u);
}

TEST(Petrick, EmptyProblemYieldsIdentity) {
  CoverProblem p(3);
  auto sop = PetrickMinimalProducts(p);
  ASSERT_EQ(sop.size(), 1u);
  EXPECT_TRUE(sop[0].Empty());
}

TEST(Petrick, IdempotentClausesCollapse) {
  // (a+b)(a+b)(a+b) == (a+b).
  CoverProblem p(2);
  for (int i = 0; i < 3; ++i) p.AddClause({Cube(2, {0, 1}), "same"});
  auto sop = PetrickMinimalProducts(p);
  EXPECT_EQ(sop.size(), 2u);
}

TEST(Petrick, ExpansionLimitThrows) {
  // 2^20 products without absorption: must trip the guard.
  CoverProblem p(40);
  for (std::size_t i = 0; i < 20; ++i) {
    p.AddClause({Cube(40, {2 * i, 2 * i + 1}), "c" + std::to_string(i)});
  }
  PetrickOptions tight;
  tight.max_products = 1000;
  EXPECT_THROW(PetrickRawExpansion(p, tight), util::OptimizationError);
}

TEST(Petrick, AbsorbedResultIsIrredundant) {
  CoverProblem p(5);
  p.AddClause({Cube(5, {0, 1}), "a"});
  p.AddClause({Cube(5, {1, 2}), "b"});
  p.AddClause({Cube(5, {3, 4}), "c"});
  auto sop = PetrickMinimalProducts(p);
  for (std::size_t i = 0; i < sop.size(); ++i) {
    EXPECT_TRUE(Satisfies(sop[i], p));
    for (std::size_t j = 0; j < sop.size(); ++j) {
      if (i != j) EXPECT_FALSE(sop[i].SubsetOf(sop[j]));
    }
  }
}

class PetrickPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PetrickPropertyTest, AllProductsCoverAndAreMinimal) {
  std::mt19937_64 rng(GetParam());
  const std::size_t nvars = 6;
  const std::size_t nclauses = 5;
  CoverProblem p(nvars);
  for (std::size_t c = 0; c < nclauses; ++c) {
    Cube lits(nvars);
    while (lits.Empty()) {
      for (std::size_t v = 0; v < nvars; ++v) {
        if (rng() % 3 == 0) lits.Set(v);
      }
    }
    p.AddClause({lits, "c" + std::to_string(c)});
  }
  auto sop = PetrickMinimalProducts(p);
  ASSERT_FALSE(sop.empty());
  // Brute force: enumerate all 2^6 subsets; collect the minimal covers.
  std::vector<Cube> minimal;
  for (std::size_t mask = 0; mask < (1u << nvars); ++mask) {
    Cube c(nvars);
    for (std::size_t v = 0; v < nvars; ++v) {
      if (mask & (1u << v)) c.Set(v);
    }
    if (!Satisfies(c, p)) continue;
    bool dominated = false;
    for (std::size_t sub = 0; sub < (1u << nvars); ++sub) {
      if (sub == mask || (sub & mask) != sub) continue;
      Cube s(nvars);
      for (std::size_t v = 0; v < nvars; ++v) {
        if (sub & (1u << v)) s.Set(v);
      }
      if (Satisfies(s, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(c);
  }
  std::sort(minimal.begin(), minimal.end(), Cube::OrderBySize);
  EXPECT_EQ(sop, minimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PetrickPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace mcdft::boolcov
