#include "testability/metrics.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace mcdft::testability {
namespace {

using faults::Fault;
using faults::FaultKind;
using spice::Complex;
using spice::FrequencyResponse;

FrequencyResponse MakeResponse(std::vector<double> freqs,
                               std::vector<double> mags) {
  FrequencyResponse r;
  r.freqs_hz = std::move(freqs);
  for (double m : mags) r.values.emplace_back(m, 0.0);
  return r;
}

std::vector<double> LogGrid(double lo, double hi, std::size_t n) {
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = lo * std::pow(hi / lo, static_cast<double>(i) / (n - 1));
  }
  return f;
}

// --- ReferenceBand ------------------------------------------------------

TEST(ReferenceBand, AroundBuildsSymmetricDecades) {
  auto band = ReferenceBand::Around(1e3, 2.0, 2.0, 10);
  EXPECT_NEAR(band.FLow(), 10.0, 1e-9);
  EXPECT_NEAR(band.FHigh(), 1e7 / 100.0, 1e-3);
  EXPECT_NEAR(band.Decades(), 4.0, 1e-12);
}

TEST(ReferenceBand, InvalidArgumentsThrow) {
  EXPECT_THROW(ReferenceBand(0.0, 1.0), util::AnalysisError);
  EXPECT_THROW(ReferenceBand(10.0, 1.0), util::AnalysisError);
  EXPECT_THROW(ReferenceBand(1.0, 10.0, 0), util::AnalysisError);
  EXPECT_THROW(ReferenceBand::Around(-5.0), util::AnalysisError);
}

TEST(ReferenceBand, SweepSpansBand) {
  auto band = ReferenceBand(100.0, 1e4, 25);
  auto sweep = band.MakeSweep();
  EXPECT_DOUBLE_EQ(sweep.FStart(), 100.0);
  EXPECT_DOUBLE_EQ(sweep.FStop(), 1e4);
  EXPECT_EQ(sweep.PointCount(), 51u);
}

TEST(ReferenceBand, LogMeasureWeightsSumToOne) {
  auto freqs = LogGrid(10.0, 1e5, 37);
  auto w = ReferenceBand::LogMeasureWeights(freqs);
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Interior weights uniform on a log-uniform grid; endpoints half.
  EXPECT_NEAR(w[1], w[18], 1e-12);
  EXPECT_NEAR(w[0], w[1] / 2.0, 1e-12);
}

TEST(ReferenceBand, LogMeasureWeightsNeedTwoPoints) {
  EXPECT_THROW(ReferenceBand::LogMeasureWeights({1.0}), util::AnalysisError);
}

// --- Anchor estimation --------------------------------------------------

TEST(AnchorEstimation, LowPassUsesCutoff) {
  // Synthetic 1-pole LP with fc at 1 kHz on a 1..1e6 grid.
  auto freqs = LogGrid(1.0, 1e6, 121);
  std::vector<double> mags;
  for (double f : freqs) mags.push_back(1.0 / std::sqrt(1.0 + (f / 1e3) * (f / 1e3)));
  auto r = MakeResponse(freqs, mags);
  double anchor = EstimateAnchorFrequency(r);
  EXPECT_NEAR(std::log10(anchor), 3.0, 0.1);
}

TEST(AnchorEstimation, BandPassUsesGeometricCentre) {
  auto freqs = LogGrid(1.0, 1e6, 121);
  std::vector<double> mags;
  for (double f : freqs) {
    const double x = f / 1e3;
    mags.push_back(x / ((1.0 + x * x)));  // peak at 1 kHz
  }
  auto r = MakeResponse(freqs, mags);
  EXPECT_NEAR(std::log10(EstimateAnchorFrequency(r)), 3.0, 0.15);
}

TEST(AnchorEstimation, FlatResponseFallsBackToPeak) {
  auto freqs = LogGrid(10.0, 1e4, 31);
  std::vector<double> mags(31, 2.0);
  auto r = MakeResponse(freqs, mags);
  double anchor = EstimateAnchorFrequency(r);
  EXPECT_GE(anchor, 10.0);
  EXPECT_LE(anchor, 1e4);
}

TEST(AnchorEstimation, AllZeroResponseUsesMidBand) {
  auto freqs = LogGrid(10.0, 1e5, 31);
  std::vector<double> mags(31, 0.0);
  auto r = MakeResponse(freqs, mags);
  EXPECT_NEAR(std::log10(EstimateAnchorFrequency(r)), 3.0, 1e-9);
}

// --- Detectability (Definitions 1 & 2) ----------------------------------

TEST(Detectability, UndetectableWhenDeviationBelowEpsilon) {
  auto freqs = LogGrid(10.0, 1e3, 21);
  auto nominal = MakeResponse(freqs, std::vector<double>(21, 1.0));
  auto faulty = MakeResponse(freqs, std::vector<double>(21, 1.05));
  DetectionCriteria criteria;
  criteria.epsilon = 0.10;
  auto d = AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                        faulty, criteria);
  EXPECT_FALSE(d.detectable);
  EXPECT_DOUBLE_EQ(d.omega_detectability, 0.0);
  EXPECT_TRUE(d.region.intervals.empty());
  EXPECT_NEAR(d.peak_deviation, 0.05, 1e-12);
}

TEST(Detectability, FullyDetectableGivesOmegaOne) {
  auto freqs = LogGrid(10.0, 1e3, 21);
  auto nominal = MakeResponse(freqs, std::vector<double>(21, 1.0));
  auto faulty = MakeResponse(freqs, std::vector<double>(21, 1.5));
  auto d = AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                        faulty, {});
  EXPECT_TRUE(d.detectable);
  EXPECT_NEAR(d.omega_detectability, 1.0, 1e-12);
  ASSERT_EQ(d.region.intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(d.region.intervals[0].first, freqs.front());
  EXPECT_DOUBLE_EQ(d.region.intervals[0].second, freqs.back());
}

TEST(Detectability, HalfBandRegionMeasuresHalf) {
  // Detectable exactly over the upper half of the log band.
  auto freqs = LogGrid(1.0, 1e4, 41);
  std::vector<double> nom(41, 1.0), fau(41, 1.0);
  for (std::size_t i = 0; i < 41; ++i) {
    if (freqs[i] >= 100.0) fau[i] = 1.5;
  }
  auto d = AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2),
                        MakeResponse(freqs, nom), MakeResponse(freqs, fau), {});
  EXPECT_NEAR(d.omega_detectability, 0.5, 0.03);
  ASSERT_EQ(d.region.intervals.size(), 1u);
}

TEST(Detectability, DisjointRegions) {
  auto freqs = LogGrid(1.0, 1e4, 41);
  std::vector<double> nom(41, 1.0), fau(41, 1.0);
  fau[2] = 2.0;
  fau[3] = 2.0;
  fau[30] = 2.0;
  auto d = AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2),
                        MakeResponse(freqs, nom), MakeResponse(freqs, fau), {});
  EXPECT_EQ(d.region.intervals.size(), 2u);
  EXPECT_TRUE(d.detectable);
  EXPECT_GT(d.omega_detectability, 0.0);
  EXPECT_LT(d.omega_detectability, 0.2);
}

TEST(Detectability, PeakDeviationTracksFrequency) {
  auto freqs = LogGrid(1.0, 1e4, 41);
  std::vector<double> nom(41, 1.0), fau(41, 1.0);
  fau[10] = 1.3;
  fau[20] = 1.8;
  auto d = AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2),
                        MakeResponse(freqs, nom), MakeResponse(freqs, fau), {});
  EXPECT_NEAR(d.peak_deviation, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(d.peak_frequency_hz, freqs[20]);
}

TEST(Detectability, EnvelopeRaisesThreshold) {
  auto freqs = LogGrid(1.0, 1e4, 11);
  auto nominal = MakeResponse(freqs, std::vector<double>(11, 1.0));
  auto faulty = MakeResponse(freqs, std::vector<double>(11, 1.2));
  DetectionCriteria criteria;
  criteria.epsilon = 0.10;
  // Without envelope: detectable (20% > 10%).
  EXPECT_TRUE(AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                           faulty, criteria)
                  .detectable);
  // Envelope of 15% masks it (threshold 25%).
  criteria.envelope.assign(11, 0.15);
  EXPECT_FALSE(AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                            faulty, criteria)
                   .detectable);
}

TEST(Detectability, EnvelopeSizeMismatchThrows) {
  auto freqs = LogGrid(1.0, 1e4, 11);
  auto nominal = MakeResponse(freqs, std::vector<double>(11, 1.0));
  DetectionCriteria criteria;
  criteria.envelope.assign(5, 0.1);
  EXPECT_THROW(AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                            nominal, criteria),
               util::AnalysisError);
}

TEST(Detectability, NonPositiveEpsilonThrows) {
  auto freqs = LogGrid(1.0, 1e4, 11);
  auto nominal = MakeResponse(freqs, std::vector<double>(11, 1.0));
  DetectionCriteria criteria;
  criteria.epsilon = 0.0;
  EXPECT_THROW(AnalyzeFault(Fault("R1", FaultKind::kDeviationUp, 0.2), nominal,
                            nominal, criteria),
               util::AnalysisError);
}

// --- Metrics -------------------------------------------------------------

FaultDetectability MakeVerdict(const std::string& dev, bool det, double omega) {
  FaultDetectability d{Fault(dev, FaultKind::kDeviationUp, 0.2)};
  d.detectable = det;
  d.omega_detectability = omega;
  return d;
}

TEST(Metrics, FaultCoverage) {
  std::vector<FaultDetectability> r{MakeVerdict("R1", true, 0.5),
                                    MakeVerdict("R2", false, 0.0),
                                    MakeVerdict("R3", true, 0.1),
                                    MakeVerdict("R4", false, 0.0)};
  EXPECT_DOUBLE_EQ(FaultCoverage(r), 0.5);
}

TEST(Metrics, AverageOmegaDetectability) {
  std::vector<FaultDetectability> r{MakeVerdict("R1", true, 0.54),
                                    MakeVerdict("R2", false, 0.0),
                                    MakeVerdict("R3", true, 0.46),
                                    MakeVerdict("R4", false, 0.0)};
  EXPECT_NEAR(AverageOmegaDetectability(r), 0.25, 1e-12);
}

TEST(Metrics, EmptyListsThrow) {
  EXPECT_THROW(FaultCoverage({}), util::AnalysisError);
  EXPECT_THROW(AverageOmegaDetectability({}), util::AnalysisError);
}

TEST(Metrics, BestCaseTakesPerFaultMaximum) {
  std::vector<FaultDetectability> c0{MakeVerdict("R1", true, 0.54),
                                     MakeVerdict("R2", false, 0.0)};
  std::vector<FaultDetectability> c1{MakeVerdict("R1", true, 0.3),
                                     MakeVerdict("R2", true, 0.7)};
  auto best = BestCasePerFault({c0, c1});
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best[0].omega_detectability, 0.54);
  EXPECT_DOUBLE_EQ(best[1].omega_detectability, 0.7);
  EXPECT_TRUE(best[1].detectable);
}

TEST(Metrics, BestCaseRejectsMismatchedLists) {
  std::vector<FaultDetectability> a{MakeVerdict("R1", true, 0.5)};
  std::vector<FaultDetectability> b{MakeVerdict("R2", true, 0.5)};
  EXPECT_THROW(BestCasePerFault({a, b}), util::AnalysisError);
  std::vector<FaultDetectability> c{MakeVerdict("R1", true, 0.5),
                                    MakeVerdict("R2", true, 0.5)};
  EXPECT_THROW(BestCasePerFault({a, c}), util::AnalysisError);
  EXPECT_THROW(BestCasePerFault({}), util::AnalysisError);
}

}  // namespace
}  // namespace mcdft::testability
