#include "testability/sensitivity.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace mcdft::testability {
namespace {

spice::Netlist Divider() {
  spice::Netlist nl("divider");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddResistor("R2", "out", "0", 1e3);
  return nl;
}

spice::Probe OutProbe(const spice::Netlist& nl) {
  return spice::Probe{nl.FindNode("out"), spice::kGround, "v(out)"};
}

TEST(Sensitivity, MatchesAnalyticDividerSensitivity) {
  // T = R2/(R1+R2) = 1/2; S^T_R1 = -R1/(R1+R2) = -1/2 -> |S| = 0.5.
  auto nl = Divider();
  auto sweep = spice::SweepSpec::List({100.0, 1000.0});
  SensitivityOptions opt;
  opt.delta = 1e-4;
  auto s = ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R1", opt);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 0.5, 1e-3);
  EXPECT_NEAR(s[1], 0.5, 1e-3);
  auto s2 = ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R2", opt);
  EXPECT_NEAR(s2[0], 0.5, 1e-3);
}

TEST(Sensitivity, CentralDifferenceCloserForLargeDelta) {
  auto nl = Divider();
  auto sweep = spice::SweepSpec::List({1000.0});
  SensitivityOptions fwd;
  fwd.delta = 0.2;
  SensitivityOptions ctr = fwd;
  ctr.central = true;
  const double s_fwd =
      ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R1", fwd)[0];
  const double s_ctr =
      ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R1", ctr)[0];
  EXPECT_LT(std::abs(s_ctr - 0.5), std::abs(s_fwd - 0.5));
}

TEST(Sensitivity, RcLowPassSensitivityPeaksAboveCutoff) {
  spice::Netlist nl("rc");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e-3);
  auto sweep = spice::SweepSpec::List({fc / 100.0, fc, fc * 10.0});
  SensitivityOptions opt;
  opt.delta = 1e-4;
  opt.relative_floor = 1e-9;  // pointwise
  auto s = ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "C1", opt);
  // |S^T_C| = (w R C) / sqrt(1 + (wRC)^2) ... rises from ~0 to ~1.
  EXPECT_LT(s[0], 0.05);
  EXPECT_NEAR(s[1], 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_GT(s[2], 0.9);
}

TEST(Sensitivity, BatchSharesNominal) {
  auto nl = Divider();
  auto sweep = spice::SweepSpec::List({1000.0});
  auto all = ComputeSensitivities(nl, sweep, OutProbe(nl), {"R1", "R2"});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NEAR(all[0][0], all[1][0], 1e-6);
}

TEST(Sensitivity, LeavesNetlistUntouched) {
  auto nl = Divider();
  ComputeRelativeSensitivity(nl, spice::SweepSpec::List({1e3}), OutProbe(nl),
                             "R1");
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1e3);
}

TEST(Sensitivity, ValidatesArguments) {
  auto nl = Divider();
  auto sweep = spice::SweepSpec::List({1e3});
  SensitivityOptions bad;
  bad.delta = 0.0;
  EXPECT_THROW(ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R1", bad),
               util::AnalysisError);
  bad.delta = 1.5;
  EXPECT_THROW(ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R1", bad),
               util::AnalysisError);
  EXPECT_THROW(ComputeRelativeSensitivity(nl, sweep, OutProbe(nl), "R9"),
               util::NetlistError);
}

}  // namespace
}  // namespace mcdft::testability
