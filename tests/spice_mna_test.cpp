// Element-stamp and MNA-engine tests: every element type is verified
// against hand-computed circuit solutions.
#include "spice/mna.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace mcdft::spice {
namespace {

TEST(Mna, ResistiveDivider) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 10.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddResistor("R2", "out", "0", 3e3);
  MnaSystem sys(nl);
  auto sol = sys.SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 7.5, 1e-9);
  // Source branch current: 10V across 4k = 2.5 mA flowing out of +.
  auto i = sol.BranchCurrent(sys.ElementIndexOf("V1"));
  EXPECT_NEAR(i.real(), -2.5e-3, 1e-12);
}

TEST(Mna, CurrentSourceIntoResistor) {
  Netlist nl;
  nl.AddCurrentSource("I1", "0", "out", 2e-3);  // 2 mA into node out
  nl.AddResistor("R1", "out", "0", 1e3);
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 2.0, 1e-12);
}

TEST(Mna, CapacitorOpenAtDc) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 5.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  nl.AddResistor("R2", "out", "0", 1e9);  // keeps the DC system regular
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 5.0, 1e-3);
}

TEST(Mna, InductorShortAtDc) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 5.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddInductor("L1", "out", "0", 1e-3);
  MnaSystem sys(nl);
  auto sol = sys.SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 0.0, 1e-12);
  // All 5 mA flows through the inductor branch.
  auto i = sol.BranchCurrent(sys.ElementIndexOf("L1"));
  EXPECT_NEAR(i.real(), 5e-3, 1e-12);
}

TEST(Mna, RcLowPassAtCutoff) {
  // R-C low-pass: |H| = 1/sqrt(2), phase -45 deg at f = 1/(2 pi R C).
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-6);
  auto sol = MnaSystem(nl).SolveAcHz(fc);
  Complex h = sol.VoltageAt(nl.FindNode("out"));
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::arg(h) * 180.0 / std::numbers::pi, -45.0, 1e-6);
}

TEST(Mna, RlHighPass) {
  // series R, shunt L: |H| = wL/sqrt(R^2 + (wL)^2).
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 100.0);
  nl.AddInductor("L1", "out", "0", 1e-3);
  const double f = 100.0 / (2.0 * std::numbers::pi * 1e-3);  // wL = R
  auto sol = MnaSystem(nl).SolveAcHz(f);
  EXPECT_NEAR(std::abs(sol.VoltageAt(nl.FindNode("out"))),
              1.0 / std::sqrt(2.0), 1e-9);
}

TEST(Mna, RlcSeriesResonance) {
  // At resonance the LC cancels: full source voltage across R.
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddInductor("L1", "in", "a", 1e-3);
  nl.AddCapacitor("C1", "a", "out", 1e-9);
  nl.AddResistor("R1", "out", "0", 50.0);
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-9));
  auto sol = MnaSystem(nl).SolveAcHz(f0);
  EXPECT_NEAR(std::abs(sol.VoltageAt(nl.FindNode("out"))), 1.0, 1e-6);
}

TEST(Mna, VcvsGain) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 2.0);
  nl.AddResistor("RL0", "in", "0", 1e3);
  nl.AddVcvs("E1", "out", "0", "in", "0", 10.0);
  nl.AddResistor("RL", "out", "0", 1e3);
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 20.0, 1e-9);
}

TEST(Mna, VccsTransconductance) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("RI", "in", "0", 1e6);
  nl.AddVccs("G1", "0", "out", "in", "0", 1e-3);  // 1 mA into out per volt
  nl.AddResistor("RL", "out", "0", 2e3);
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 2.0, 1e-9);
}

TEST(Mna, CcvsTransresistance) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 500.0);  // source current = 2 mA
  nl.AddCcvs("H1", "out", "0", "V1", 1e3);
  nl.AddResistor("RL", "out", "0", 1e3);
  auto sol = MnaSystem(nl).SolveDc();
  // V1 branch current is -2 mA (flows out of +), so V(out) = -2 V.
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), -2.0, 1e-9);
}

TEST(Mna, CccsGain) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1e3);  // 1 mA through V1 (out of +)
  nl.AddCccs("F1", "0", "out", "V1", 5.0);
  nl.AddResistor("RL", "out", "0", 1e3);
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), -5.0, 1e-9);
}

TEST(Mna, OpampInvertingAmplifier) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("RIN", "in", "minus", 1e3);
  nl.AddResistor("RF", "minus", "out", 10e3);
  nl.AddOpamp("OP1", "0", "minus", "out");
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), -10.0, 1e-3);
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("minus")).real(), 0.0, 1e-4);
}

TEST(Mna, OpampNonInvertingAmplifier) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("RG", "minus", "0", 1e3);
  nl.AddResistor("RF", "minus", "out", 4e3);
  nl.AddOpamp("OP1", "in", "minus", "out");
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), 5.0, 1e-3);
}

TEST(Mna, IdealOpampModel) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("RIN", "in", "minus", 1e3);
  nl.AddResistor("RF", "minus", "out", 10e3);
  OpampModel ideal{OpampModelKind::kIdeal, 0.0, 0.0};
  nl.AddElement(std::make_unique<Opamp>("OP1", nl.Node("0"), nl.Node("minus"),
                                        nl.Node("out"), ideal));
  auto sol = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(nl.FindNode("out")).real(), -10.0, 1e-9);
}

TEST(Mna, SinglePoleOpampRollsOff) {
  // Unity follower with GBW 1 MHz: at 1 MHz |H| ~ 1/sqrt(2).
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  OpampModel pole{OpampModelKind::kSinglePole, 1e5, 1e6};
  nl.AddElement(std::make_unique<Opamp>("OP1", nl.Node("in"), nl.Node("out"),
                                        nl.Node("out"), pole));
  nl.AddResistor("RL", "out", "0", 1e4);
  MnaSystem sys(nl);
  EXPECT_NEAR(std::abs(sys.SolveAcHz(1e3).VoltageAt(nl.FindNode("out"))), 1.0,
              1e-2);
  EXPECT_NEAR(std::abs(sys.SolveAcHz(1e6).VoltageAt(nl.FindNode("out"))),
              1.0 / std::sqrt(2.0), 2e-2);
}

TEST(Mna, ConfigurableOpampFollowerTracksTestInput) {
  Netlist nl;
  nl.AddVoltageSource("V1", "sig", "0", 3.0);
  nl.AddResistor("RS", "sig", "0", 1e3);
  nl.AddResistor("RIN", "sig", "minus", 1e3);
  nl.AddResistor("RF", "minus", "out", 1e3);
  auto& e = nl.AddOpamp("OP1", "0", "minus", "out");
  auto& op = static_cast<Opamp&>(e);
  op.MakeConfigurable(nl.Node("sig"));

  // Normal mode: inverting gain -1.
  auto sol_normal = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol_normal.VoltageAt(nl.FindNode("out")).real(), -3.0, 1e-3);

  // Follower mode: output tracks the test input, feedback network is
  // driven but ignored.
  op.SetMode(OpampMode::kFollower);
  auto sol_follow = MnaSystem(nl).SolveDc();
  EXPECT_NEAR(sol_follow.VoltageAt(nl.FindNode("out")).real(), 3.0, 1e-3);
}

TEST(Mna, BackendsAgree) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "a", 1e3);
  nl.AddCapacitor("C1", "a", "0", 1e-9);
  nl.AddResistor("R2", "a", "b", 2e3);
  nl.AddInductor("L1", "b", "0", 1e-3);
  MnaOptions dense;
  dense.backend = SolverBackend::kDense;
  MnaOptions sparse;
  sparse.backend = SolverBackend::kSparse;
  auto sd = MnaSystem(nl, dense).SolveAcHz(50e3);
  auto ss = MnaSystem(nl, sparse).SolveAcHz(50e3);
  for (NodeId n = 1; n < nl.NodeCount(); ++n) {
    EXPECT_NEAR(std::abs(sd.VoltageAt(n) - ss.VoltageAt(n)), 0.0, 1e-10);
  }
}

TEST(Mna, UnknownCountsNodesPlusBranches) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);  // 1 branch
  nl.AddResistor("R1", "in", "out", 1e3);     // 0 branches
  nl.AddInductor("L1", "out", "0", 1e-3);     // 1 branch
  MnaSystem sys(nl);
  EXPECT_EQ(sys.NodeUnknownCount(), 2u);
  EXPECT_EQ(sys.UnknownCount(), 4u);
}

TEST(Mna, InvalidNetlistRejectedAtConstruction) {
  Netlist nl;  // empty
  EXPECT_THROW(MnaSystem{nl}, util::NetlistError);
}

TEST(Mna, ElementIndexOfUnknownThrows) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1.0);
  MnaSystem sys(nl);
  EXPECT_THROW(sys.ElementIndexOf("nope"), util::AnalysisError);
}

TEST(Mna, BranchCurrentOfBranchlessElementThrows) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1.0);
  MnaSystem sys(nl);
  auto sol = sys.SolveDc();
  EXPECT_THROW(sol.BranchCurrent(sys.ElementIndexOf("R1")),
               util::AnalysisError);
}

TEST(Mna, FloatingNodeSingularSystemThrows) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddCapacitor("C1", "in", "mid", 1e-9);
  nl.AddCapacitor("C2", "mid", "0", 1e-9);
  // DC: mid is isolated by the capacitors -> singular DC system.
  EXPECT_THROW(MnaSystem(nl).SolveDc(), util::NumericError);
  // AC is fine.
  EXPECT_NO_THROW(MnaSystem(nl).SolveAcHz(1e3));
}

}  // namespace
}  // namespace mcdft::spice
