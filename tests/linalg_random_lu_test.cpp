// Property/differential tests of the sparse solver stack on randomized
// RC/RLC ladder netlists: the sparse Markowitz LU must agree with the dense
// LU to roundoff on the same assembled MNA system, and the cached
// numeric-only Refactor() path must agree with a cold factorization across
// parametric (value-only) perturbations — the exact reuse pattern of the
// fault-simulation campaigns.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/mna.hpp"
#include "spice/netlist.hpp"

namespace mcdft {
namespace {

using linalg::Complex;
using linalg::CsrMatrix;
using linalg::SparseLu;
using linalg::TripletMatrix;
using linalg::Vector;

struct RandomCircuit {
  spice::Netlist netlist;
  std::vector<std::string> tweakable;  // R/C/L names for perturbation
};

/// Random RC/RLC ladder: a source-driven spine of series resistors with a
/// shunt R/C/L element from every spine node to ground, plus a few random
/// bridging elements.  Every node reaches ground, so Validate() passes and
/// the MNA system is well-posed.
RandomCircuit BuildRandomLadder(std::mt19937_64& rng, bool with_inductors) {
  std::uniform_int_distribution<std::size_t> stage_count(3, 12);
  std::uniform_real_distribution<double> log_r(2.0, 5.0);    // 100 Ω .. 100 kΩ
  std::uniform_real_distribution<double> log_c(-10.0, -7.0);  // 0.1 nF .. 100 nF
  std::uniform_real_distribution<double> log_l(-4.0, -2.0);  // 0.1 mH .. 10 mH
  std::uniform_int_distribution<int> kind(0, with_inductors ? 2 : 1);

  RandomCircuit out;
  const std::size_t stages = stage_count(rng);
  std::size_t n_res = 0, n_cap = 0, n_ind = 0;
  const auto node = [](std::size_t i) { return "n" + std::to_string(i); };

  out.netlist.AddVoltageSource("Vin", node(0), "0", 0.0, 1.0);  // 1 V AC
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string r = "R" + std::to_string(++n_res);
    out.netlist.AddResistor(r, node(i), node(i + 1),
                            std::pow(10.0, log_r(rng)));
    out.tweakable.push_back(r);
    // Shunt element to ground keeps every node DC- or AC-connected.
    switch (kind(rng)) {
      case 0: {
        const std::string name = "R" + std::to_string(++n_res);
        out.netlist.AddResistor(name, node(i + 1), "0",
                                std::pow(10.0, log_r(rng)));
        out.tweakable.push_back(name);
        break;
      }
      case 1: {
        const std::string name = "C" + std::to_string(++n_cap);
        out.netlist.AddCapacitor(name, node(i + 1), "0",
                                 std::pow(10.0, log_c(rng)));
        out.tweakable.push_back(name);
        break;
      }
      default: {
        const std::string name = "L" + std::to_string(++n_ind);
        out.netlist.AddInductor(name, node(i + 1), "0",
                                std::pow(10.0, log_l(rng)));
        out.tweakable.push_back(name);
        break;
      }
    }
  }
  // A couple of random bridges for off-ladder structure.
  std::uniform_int_distribution<std::size_t> pick(1, stages);
  for (int b = 0; b < 2; ++b) {
    const std::size_t a = pick(rng), c = pick(rng);
    if (a == c) continue;
    out.netlist.AddCapacitor("C" + std::to_string(++n_cap), node(a), node(c),
                             std::pow(10.0, log_c(rng)));
  }
  out.netlist.ValidateOrThrow();
  return out;
}

double MaxRelativeError(const Vector& x, const Vector& y) {
  double max_mag = x.NormInf();
  if (max_mag == 0.0) max_mag = 1.0;
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - y[i]) / max_mag);
  }
  return err;
}

TEST(RandomLu, SparseMatchesDenseOnRandomNetlists) {
  constexpr std::size_t kCases = 100;
  for (std::size_t seed = 0; seed < kCases; ++seed) {
    std::mt19937_64 rng(0xC0FFEE ^ seed);
    const RandomCircuit rc = BuildRandomLadder(rng, seed % 2 == 1);
    const spice::MnaSystem mna(rc.netlist);
    std::uniform_real_distribution<double> log_f(1.0, 6.0);
    const double omega = 2.0 * 3.141592653589793 * std::pow(10.0, log_f(rng));

    TripletMatrix a;
    Vector b;
    mna.Assemble(spice::AnalysisKind::kAc, omega, a, b);
    const CsrMatrix csr(a);
    const Vector sparse = linalg::SolveSparse(csr, b);
    const Vector dense = linalg::SolveDense(a.ToDense(), b);
    EXPECT_LT(MaxRelativeError(sparse, dense), 1e-8)
        << "seed " << seed << " (" << mna.UnknownCount() << " unknowns)";
  }
}

TEST(RandomLu, RefactorMatchesColdFactorizationUnderPerturbation) {
  constexpr std::size_t kCases = 100;
  constexpr std::size_t kPerturbations = 4;
  std::size_t refactor_ok = 0, refactor_total = 0;
  for (std::size_t seed = 0; seed < kCases; ++seed) {
    std::mt19937_64 rng(0xBEEF00 ^ seed);
    RandomCircuit rc = BuildRandomLadder(rng, seed % 2 == 0);
    const spice::MnaSystem mna(rc.netlist);
    const double omega = 2.0 * 3.141592653589793 * 1e4;

    TripletMatrix a;
    Vector b;
    mna.Assemble(spice::AnalysisKind::kAc, omega, a, b);
    SparseLu cached{CsrMatrix(a)};

    std::uniform_real_distribution<double> factor(0.7, 1.3);
    for (std::size_t p = 0; p < kPerturbations; ++p) {
      // Value-only perturbation of every tweakable element (the sparsity
      // pattern is invariant, as with parametric deviation faults).
      for (const std::string& name : rc.tweakable) {
        spice::Element& e = rc.netlist.GetElement(name);
        e.SetValue(e.Value() * factor(rng));
      }
      mna.Assemble(spice::AnalysisKind::kAc, omega, a, b);
      const CsrMatrix csr(a);
      ++refactor_total;
      if (!cached.Refactor(csr)) {
        // Legal outcome: the cached ordering went numerically stale; the
        // caller's contract is a fresh factorization.
        cached = SparseLu{csr};
      } else {
        ++refactor_ok;
      }
      Vector via_cache = cached.Solve(b);
      SparseLu cold{csr};
      Vector via_cold = cold.Solve(b);
      EXPECT_LT(MaxRelativeError(via_cache, via_cold), 1e-9)
          << "seed " << seed << " perturbation " << p;
      // Both must actually solve the system: differential check against
      // the dense backend.
      const Vector dense = linalg::SolveDense(a.ToDense(), b);
      EXPECT_LT(MaxRelativeError(via_cache, dense), 1e-8)
          << "seed " << seed << " perturbation " << p;
    }
  }
  // ±30 % perturbations should overwhelmingly keep the cached ordering
  // valid; a collapse here means the refactor fast path is broken.
  EXPECT_GT(refactor_ok * 10, refactor_total * 9)
      << refactor_ok << "/" << refactor_total << " refactors took the fast path";
}

}  // namespace
}  // namespace mcdft
