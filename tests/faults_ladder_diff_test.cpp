// Differential test for the retry ladder (ISSUE 5 satellite): on healthy
// circuits the resilience machinery must be a strict no-op — bit-identical
// responses with `retry_ladder` on and off, zero retries, zero quarantined
// points.  Sweeps the whole circuit zoo under a grid of component-value
// scalings (~100 circuit variants), so the claim is not an artifact of one
// lucky operating point.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/zoo.hpp"
#include "faults/fault_list.hpp"
#include "faults/simulator.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::faults {
namespace {

/// Value scalings applied to every resistor and capacitor of a variant.
/// Spread over four decades: healthy but distinct operating points.
constexpr double kScales[] = {0.01, 0.05, 0.2, 0.5, 0.8, 1.0,
                              1.25, 2.0,  5.0, 10.0, 25.0, 100.0};

core::AnalogBlock ScaledBlock(const circuits::ZooEntry& entry, double scale) {
  core::AnalogBlock block = entry.build();
  for (const auto& e : block.netlist.Elements()) {
    const spice::ElementKind kind = e->Kind();
    if (kind == spice::ElementKind::kResistor ||
        kind == spice::ElementKind::kCapacitor) {
      spice::Element& el = block.netlist.GetElement(e->Name());
      el.SetValue(el.Value() * scale);
    }
  }
  return block;
}

TEST(LadderDifferential, LadderIsANoOpOnHealthyCircuits) {
  // The no-op claim is about undisturbed operation: opt out of any
  // armed-suite MCDFT_FAULTPOINTS spec.
  util::faultpoint::DisarmAll();
  const util::metrics::ScopedEnable metrics_on;
  util::metrics::Counter& retries =
      util::metrics::GetCounter("faults.sim.retries");
  util::metrics::Counter& quarantined =
      util::metrics::GetCounter("faults.sim.quarantined");

  const auto sweep = spice::SweepSpec::Decade(50.0, 5e4, 3);
  std::size_t variants = 0;

  for (const circuits::ZooEntry& entry : circuits::Zoo()) {
    for (const double scale : kScales) {
      const std::string what =
          entry.name + " x" + std::to_string(scale);
      const core::AnalogBlock block = ScaledBlock(entry, scale);
      const std::vector<Fault> fault_list =
          MakeDeviationFaults(block.netlist);
      ASSERT_FALSE(fault_list.empty()) << what;

      spice::Probe probe;
      spice::Netlist work = block.netlist.Clone();
      probe.plus = work.FindNode(block.output_node);

      spice::MnaOptions with_ladder;
      with_ladder.retry_ladder = true;
      spice::MnaOptions without_ladder;
      without_ladder.retry_ladder = false;

      const std::uint64_t retries_before = retries.Value();
      const std::uint64_t quarantined_before = quarantined.Value();

      const FaultSimulator on(work, sweep, probe, with_ladder);
      const std::vector<spice::FrequencyResponse> a =
          on.SimulateRange(fault_list, 0, fault_list.size(), 2);
      const FaultSimulator off(work, sweep, probe, without_ladder);
      const std::vector<spice::FrequencyResponse> b =
          off.SimulateRange(fault_list, 0, fault_list.size(), 2);

      // The ladder never engaged and nothing was quarantined.
      EXPECT_EQ(retries.Value(), retries_before) << what;
      EXPECT_EQ(quarantined.Value(), quarantined_before) << what;

      // Bit-identical responses, point by point.
      ASSERT_EQ(a.size(), b.size()) << what;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label) << what;
        EXPECT_EQ(a[i].QuarantinedCount(), 0u) << what << " row " << i;
        EXPECT_EQ(b[i].QuarantinedCount(), 0u) << what << " row " << i;
        ASSERT_EQ(a[i].values.size(), b[i].values.size()) << what;
        for (std::size_t p = 0; p < a[i].values.size(); ++p) {
          EXPECT_EQ(a[i].values[p], b[i].values[p])
              << what << " row " << i << " point " << p;
        }
      }
      ++variants;
    }
  }
  // The claim covers a ~100-variant population, not a handful.
  EXPECT_GE(variants, 90u);
}

}  // namespace
}  // namespace mcdft::faults
