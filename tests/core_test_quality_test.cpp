#include "core/test_quality.hpp"

#include <gtest/gtest.h>

#include "circuits/biquad.hpp"
#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

class TestQualityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new DftCircuit(circuits::BuildDftBiquad());
    fault_list_ = new std::vector<faults::Fault>(
        faults::MakeDeviationFaults(circuit_->Circuit()));
    campaign_ = new CampaignResult(
        RunCampaign(*circuit_, *fault_list_,
                    circuit_->Space().AllNonTransparent(),
                    MakePaperCampaignOptions()));
    plan_ = new TestPlan(GenerateTestPlan(*campaign_));
    TestQualityOptions options;
    options.good_samples = 32;
    options.faulty_samples = 8;
    report_ = new TestQualityReport(EvaluateTestQuality(
        *circuit_, *plan_, *fault_list_, MeasurementMode::kComplex, options));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete plan_;
    delete campaign_;
    delete fault_list_;
    delete circuit_;
    report_ = nullptr;
  }
  static DftCircuit* circuit_;
  static std::vector<faults::Fault>* fault_list_;
  static CampaignResult* campaign_;
  static TestPlan* plan_;
  static TestQualityReport* report_;
};

DftCircuit* TestQualityFixture::circuit_ = nullptr;
std::vector<faults::Fault>* TestQualityFixture::fault_list_ = nullptr;
CampaignResult* TestQualityFixture::campaign_ = nullptr;
TestPlan* TestQualityFixture::plan_ = nullptr;
TestQualityReport* TestQualityFixture::report_ = nullptr;

TEST_F(TestQualityFixture, InToleranceCircuitsMostlyPass) {
  // The acceptance windows were built from (epsilon + MC envelope), so
  // in-tolerance spread should rarely trip them.
  EXPECT_EQ(report_->good_total, 32u);
  EXPECT_LE(report_->FalseRejectRate(), 0.15);
}

TEST_F(TestQualityFixture, FaultsAreMostlyCaught) {
  // Every fault is covered by the plan; with tolerance spread on top some
  // samples can slip through, but the majority must be caught.
  ASSERT_EQ(report_->escapes.size(), fault_list_->size());
  EXPECT_LE(report_->OverallEscapeRate(), 0.4);
  std::size_t fully_caught = 0;
  for (const auto& e : report_->escapes) {
    EXPECT_EQ(e.total, 8u);
    if (e.escaped == 0) ++fully_caught;
  }
  EXPECT_GE(fully_caught, fault_list_->size() / 2);
}

TEST_F(TestQualityFixture, DeterministicForFixedSeed) {
  TestQualityOptions options;
  options.good_samples = 8;
  options.faulty_samples = 4;
  auto r1 = EvaluateTestQuality(*circuit_, *plan_, *fault_list_,
                                MeasurementMode::kComplex, options);
  auto r2 = EvaluateTestQuality(*circuit_, *plan_, *fault_list_,
                                MeasurementMode::kComplex, options);
  EXPECT_EQ(r1.good_rejected, r2.good_rejected);
  for (std::size_t i = 0; i < r1.escapes.size(); ++i) {
    EXPECT_EQ(r1.escapes[i].escaped, r2.escapes[i].escaped);
  }
}

TEST_F(TestQualityFixture, ZeroToleranceCatchesEveryCoveredFault) {
  // Without process spread, the plan's windows are exactly the campaign's
  // detection boundaries: every covered fault must fail the plan and the
  // nominal circuit must pass.
  TestQualityOptions options;
  options.tolerance.component_tolerance = 1e-9;
  options.good_samples = 4;
  options.faulty_samples = 1;
  auto report = EvaluateTestQuality(*circuit_, *plan_, *fault_list_,
                                    MeasurementMode::kComplex, options);
  EXPECT_EQ(report.good_rejected, 0u);
  for (const auto& e : report.escapes) {
    EXPECT_EQ(e.escaped, 0u) << e.fault.Label();
  }
}

TEST_F(TestQualityFixture, MagnitudeModeLetsPhaseOnlyFaultEscape) {
  TestPlanOptions plan_options;
  plan_options.mode = MeasurementMode::kMagnitude;
  auto mag_plan = GenerateTestPlan(*campaign_, plan_options);
  TestQualityOptions options;
  options.tolerance.component_tolerance = 1e-9;
  options.good_samples = 2;
  options.faulty_samples = 1;
  auto report = EvaluateTestQuality(*circuit_, mag_plan, *fault_list_,
                                    MeasurementMode::kMagnitude, options);
  // fR2 is not covered by the magnitude plan: it must escape.
  bool fr2_escapes = false;
  for (const auto& e : report.escapes) {
    if (e.fault.ShortLabel() == "fR2" && e.escaped == e.total) {
      fr2_escapes = true;
    }
  }
  EXPECT_TRUE(fr2_escapes);
}

TEST_F(TestQualityFixture, RenderShowsRates) {
  std::string out = RenderTestQuality(*report_);
  EXPECT_NE(out.find("false-reject"), std::string::npos);
  EXPECT_NE(out.find("escape rate"), std::string::npos);
  EXPECT_NE(out.find("fR1"), std::string::npos);
}

TEST(TestQualityErrors, EmptyPlanRejected) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  TestPlan empty;
  EXPECT_THROW(EvaluateTestQuality(circuit, empty, {}), util::AnalysisError);
}

}  // namespace
}  // namespace mcdft::core
