// Bit-identity tests of the batched fault-solve path (ISSUE 6 tentpole):
// batching is a pure throughput knob, so FaultSimulator::SimulateRange must
// produce *byte*-identical values and quarantine verdicts at every batch
// width, thread count, and under forced scalar SIMD dispatch — including
// with the smw.solve faultpoint armed, where batched cells peel out onto
// the same retry ladder the unbatched path walks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/zoo.hpp"
#include "faults/fault_list.hpp"
#include "faults/simulator.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::faults {
namespace {

std::vector<spice::FrequencyResponse> RunRange(
    const core::AnalogBlock& block, const std::vector<Fault>& fault_list,
    const spice::SweepSpec& sweep, std::size_t fault_batch,
    std::size_t threads, bool ladder = true) {
  spice::Probe probe;
  probe.plus = block.netlist.FindNode(block.output_node);
  spice::MnaOptions options;
  options.fault_batch = fault_batch;
  options.retry_ladder = ladder;
  const FaultSimulator sim(block.netlist, sweep, probe, options);
  return sim.SimulateRange(fault_list, 0, fault_list.size(), threads);
}

void ExpectBitIdentical(const std::vector<spice::FrequencyResponse>& a,
                        const std::vector<spice::FrequencyResponse>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << what;
    ASSERT_EQ(a[i].values.size(), b[i].values.size()) << what;
    for (std::size_t p = 0; p < a[i].values.size(); ++p) {
      EXPECT_EQ(a[i].values[p], b[i].values[p])
          << what << " row " << a[i].label << " point " << p;
      EXPECT_EQ(a[i].QuarantinedAt(p), b[i].QuarantinedAt(p))
          << what << " row " << a[i].label << " point " << p;
    }
  }
}

TEST(BatchedFaultSolves, BitIdenticalAcrossBatchWidthsAndThreads) {
  util::faultpoint::DisarmAll();
  const auto sweep = spice::SweepSpec::Decade(50.0, 5e4, 4);

  for (const char* name : {"biquad", "cascade6", "leapfrog"}) {
    const core::AnalogBlock block = circuits::FindInZoo(name).build();
    const std::vector<Fault> fault_list = MakeDeviationFaults(block.netlist);
    ASSERT_GT(fault_list.size(), 4u) << name;

    // Reference: batching disabled, serial.
    const auto reference = RunRange(block, fault_list, sweep, 0, 1);

    for (const std::size_t width : {1u, 4u, 32u}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const std::string what = std::string(name) + " width=" +
                                 std::to_string(width) + " threads=" +
                                 std::to_string(threads);
        ExpectBitIdentical(
            reference, RunRange(block, fault_list, sweep, width, threads),
            what);
      }
    }
  }
}

TEST(BatchedFaultSolves, BitIdenticalWithoutRetryLadder) {
  util::faultpoint::DisarmAll();
  const auto sweep = spice::SweepSpec::Decade(50.0, 5e4, 3);
  const core::AnalogBlock block = circuits::FindInZoo("biquad").build();
  const std::vector<Fault> fault_list = MakeDeviationFaults(block.netlist);

  const auto unbatched = RunRange(block, fault_list, sweep, 0, 1, false);
  const auto batched = RunRange(block, fault_list, sweep, 8, 1, false);
  ExpectBitIdentical(unbatched, batched, "biquad fail-fast");
}

TEST(BatchedFaultSolves, OccupancyCountersTrackBatchedCells) {
  util::faultpoint::DisarmAll();
  const util::metrics::ScopedEnable metrics_on;
  util::metrics::Counter& batches =
      util::metrics::GetCounter("faults.sim.batches");
  util::metrics::Counter& cells =
      util::metrics::GetCounter("faults.sim.batched_cells");
  util::metrics::Counter& peeled =
      util::metrics::GetCounter("faults.sim.batch_peeled");

  const auto sweep = spice::SweepSpec::Decade(50.0, 5e4, 3);
  const core::AnalogBlock block = circuits::FindInZoo("cascade6").build();
  const std::vector<Fault> fault_list = MakeDeviationFaults(block.netlist);

  const std::uint64_t batches0 = batches.Value();
  const std::uint64_t cells0 = cells.Value();
  const std::uint64_t peeled0 = peeled.Value();
  (void)RunRange(block, fault_list, sweep, 8, 1);

  // ceil(faults / width) batches per frequency point, every cell batched,
  // nothing peeled on a healthy circuit.
  const std::size_t points = sweep.Frequencies().size();
  const std::size_t per_point = (fault_list.size() + 7) / 8;
  EXPECT_EQ(batches.Value() - batches0, points * per_point);
  EXPECT_EQ(cells.Value() - cells0, points * fault_list.size());
  EXPECT_EQ(peeled.Value() - peeled0, 0u);
}

TEST(BatchedFaultSolves, ArmedInjectionQuarantinesIdenticallyAtAnyWidth) {
  // With smw.solve armed, batched cells flagged kFailed must walk the
  // identical ladder the unbatched path walks after its Solve() throw:
  // same values, same quarantine verdicts, same retry totals — at every
  // batch width and thread count (the hashed faultpoint fires per cell
  // digest, not per call order).
  const util::metrics::ScopedEnable metrics_on;
  util::metrics::Counter& retries =
      util::metrics::GetCounter("faults.sim.retries");
  const auto sweep = spice::SweepSpec::Decade(50.0, 5e4, 4);
  const core::AnalogBlock block = circuits::FindInZoo("biquad").build();
  const std::vector<Fault> fault_list = MakeDeviationFaults(block.netlist);

  util::faultpoint::Arm("smw.solve", 0.2, 99);
  const std::uint64_t retries0 = retries.Value();
  const auto reference = RunRange(block, fault_list, sweep, 0, 1);
  const std::uint64_t unbatched_retries = retries.Value() - retries0;
  // The 20% rate must actually engage the ladder somewhere in this grid.
  ASSERT_GT(unbatched_retries, 0u);

  for (const std::size_t width : {1u, 8u, 32u}) {
    for (const std::size_t threads : {1u, 4u}) {
      util::faultpoint::Arm("smw.solve", 0.2, 99);
      const std::uint64_t before = retries.Value();
      const auto got = RunRange(block, fault_list, sweep, width, threads);
      EXPECT_EQ(retries.Value() - before, unbatched_retries)
          << "width=" << width << " threads=" << threads;
      ExpectBitIdentical(reference, got,
                         "armed width=" + std::to_string(width) +
                             " threads=" + std::to_string(threads));
    }
  }
  util::faultpoint::DisarmAll();
}

}  // namespace
}  // namespace mcdft::faults
