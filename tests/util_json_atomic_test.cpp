// Atomic file writes (util/json WriteFileAtomic / WriteTextFileAtomic):
// crash-consistency driven through the checkpoint.write.* faultpoints.
// Every failure mode — short write, fsync failure, rename failure — must
// leave the destination at its previous content and remove the tmp file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/faultpoint.hpp"
#include "util/json.hpp"

namespace mcdft::util::json {
namespace {

namespace fs = std::filesystem;

std::string Slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class AtomicWrite : public ::testing::Test {
 protected:
  void SetUp() override {
    faultpoint::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("mcdft_atomic_write_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "doc.json").string();
    tmp_ = path_ + ".tmp";
  }
  void TearDown() override {
    faultpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::string path_;
  std::string tmp_;
};

TEST_F(AtomicWrite, SuccessfulWriteLeavesNoTmpFile) {
  WriteTextFileAtomic("hello\n", path_);
  EXPECT_EQ(Slurp(path_), "hello\n");
  EXPECT_FALSE(fs::exists(tmp_));

  Value v = Value::Object();
  v.Set("k", Value::Number(static_cast<std::uint64_t>(7)));
  WriteFileAtomic(v, path_);
  EXPECT_EQ(ParseFile(path_).Get("k").AsDouble(), 7.0);
  EXPECT_FALSE(fs::exists(tmp_));
}

TEST_F(AtomicWrite, EveryInjectedFailureCleansTmpAndKeepsPreviousContent) {
  WriteTextFileAtomic("previous\n", path_);

  for (const char* point : {"checkpoint.write.short",
                            "checkpoint.write.fsync",
                            "checkpoint.write.rename"}) {
    faultpoint::DisarmAll();
    faultpoint::Arm(point, 1.0, 1);
    EXPECT_THROW(WriteTextFileAtomic("replacement\n", path_), util::Error)
        << point;
    // The destination still holds the previous document and the failed
    // attempt left no tmp litter behind.
    EXPECT_EQ(Slurp(path_), "previous\n") << point;
    EXPECT_FALSE(fs::exists(tmp_)) << point;
  }

  // Disarmed again, the same write goes through.
  faultpoint::DisarmAll();
  WriteTextFileAtomic("replacement\n", path_);
  EXPECT_EQ(Slurp(path_), "replacement\n");
  EXPECT_FALSE(fs::exists(tmp_));
}

TEST_F(AtomicWrite, PartialRateInjectionEventuallySucceedsAndStaysClean) {
  // At rate 0.5 some attempts fail and some succeed; after each attempt
  // the invariant holds: no tmp file, destination either previous or new.
  faultpoint::Arm("checkpoint.write.short", 0.5, 99);
  std::string expected;
  std::size_t failures = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string text = "generation " + std::to_string(i) + "\n";
    try {
      WriteTextFileAtomic(text, path_);
      expected = text;
    } catch (const util::Error&) {
      ++failures;
    }
    EXPECT_FALSE(fs::exists(tmp_));
    if (!expected.empty()) {
      EXPECT_EQ(Slurp(path_), expected);
    }
  }
  EXPECT_GT(failures, 0u);
  EXPECT_FALSE(expected.empty());
}

}  // namespace
}  // namespace mcdft::util::json
