#include "core/test_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "circuits/biquad.hpp"
#include "core/optimizer.hpp"
#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

class TestPlanFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new DftCircuit(circuits::BuildDftBiquad());
    auto fault_list = faults::MakeDeviationFaults(circuit_->Circuit());
    campaign_ = new CampaignResult(
        RunCampaign(*circuit_, fault_list,
                    circuit_->Space().AllNonTransparent(),
                    MakePaperCampaignOptions()));
    plan_ = new TestPlan(GenerateTestPlan(*campaign_));
  }
  static void TearDownTestSuite() {
    delete plan_;
    delete campaign_;
    delete circuit_;
    plan_ = nullptr;
  }
  static DftCircuit* circuit_;
  static CampaignResult* campaign_;
  static TestPlan* plan_;
};

DftCircuit* TestPlanFixture::circuit_ = nullptr;
CampaignResult* TestPlanFixture::campaign_ = nullptr;
TestPlan* TestPlanFixture::plan_ = nullptr;

TEST_F(TestPlanFixture, CoversEveryFaultWithFewMeasurements) {
  EXPECT_DOUBLE_EQ(plan_->coverage, 1.0);
  EXPECT_TRUE(plan_->uncovered.empty());
  // 8 faults, strongly overlapping regions: a handful of points suffices
  // (versus 7 configurations x 201 grid points = 1407 measured sweeps).
  EXPECT_LE(plan_->steps.size(), 8u);
  EXPECT_GE(plan_->steps.size(), 2u);
}

TEST_F(TestPlanFixture, StepsAreGroupedByConfiguration) {
  // Reconfigurations = number of config blocks; grouping means the count
  // equals the number of *distinct* configurations used.
  std::set<std::size_t> distinct;
  for (const auto& m : plan_->steps) distinct.insert(m.row);
  EXPECT_EQ(plan_->reconfigurations, distinct.size());
}

TEST_F(TestPlanFixture, WindowsAreConsistent) {
  for (const auto& m : plan_->steps) {
    EXPECT_GE(m.expected_magnitude, 0.0);
    EXPECT_LE(m.lower_bound, m.expected_magnitude);
    EXPECT_GE(m.upper_bound, m.expected_magnitude);
    EXPECT_GT(m.upper_bound, m.lower_bound);
    EXPECT_FALSE(m.covers.empty());
    EXPECT_GT(m.frequency_hz, 0.0);
  }
}

TEST_F(TestPlanFixture, EveryCoveredFaultViolatesItsWindow) {
  // End-to-end check of the plan semantics: simulate each fault and verify
  // that at least one plan measurement falls outside its window.
  auto fault_list = faults::MakeDeviationFaults(circuit_->Circuit());
  DftCircuit work = circuit_->Clone();
  for (std::size_t j = 0; j < fault_list.size(); ++j) {
    bool caught = false;
    for (const auto& m : plan_->steps) {
      if (std::find(m.covers.begin(), m.covers.end(), j) == m.covers.end()) {
        continue;
      }
      ScopedConfiguration sc(work, m.config);
      faults::ScopedFaultInjection inj(
          const_cast<spice::Netlist&>(work.Circuit()), fault_list[j]);
      spice::AcAnalyzer analyzer(work.Circuit());
      auto r = analyzer.Run(
          spice::SweepSpec::List({m.frequency_hz}),
          {work.Circuit().FindNode(work.OutputNode()), spice::kGround, "v"});
      // Vector (complex) measurement against the window radius.
      if (std::abs(r.values[0] - m.expected) > m.window_radius) {
        caught = true;
        break;
      }
    }
    EXPECT_TRUE(caught) << fault_list[j].Label();
  }
}

TEST_F(TestPlanFixture, FaultFreeCircuitPassesThePlan) {
  DftCircuit work = circuit_->Clone();
  for (const auto& m : plan_->steps) {
    ScopedConfiguration sc(work, m.config);
    spice::AcAnalyzer analyzer(work.Circuit());
    auto r = analyzer.Run(
        spice::SweepSpec::List({m.frequency_hz}),
        {work.Circuit().FindNode(work.OutputNode()), spice::kGround, "v"});
    EXPECT_LE(std::abs(r.values[0] - m.expected), m.window_radius);
    EXPECT_GE(r.MagnitudeAt(0), m.lower_bound);
    EXPECT_LE(r.MagnitudeAt(0), m.upper_bound);
  }
}

TEST_F(TestPlanFixture, RestrictedRowsRespectTheSubset) {
  DftOptimizer optimizer(*circuit_, *campaign_);
  auto sel = optimizer.OptimizeConfigurationCount();
  TestPlanOptions options;
  options.rows = sel.selected.rows.Variables();
  auto plan = GenerateTestPlan(*campaign_, options);
  for (const auto& m : plan.steps) {
    EXPECT_NE(std::find(options.rows.begin(), options.rows.end(), m.row),
              options.rows.end());
  }
  EXPECT_DOUBLE_EQ(plan.coverage, 1.0);  // S_opt keeps max coverage
}

TEST_F(TestPlanFixture, ExactCoverNotLargerThanGreedy) {
  TestPlanOptions greedy_options;
  TestPlanOptions exact_options;
  exact_options.exact = true;
  exact_options.max_exact_points = 5000;
  auto greedy = GenerateTestPlan(*campaign_, greedy_options);
  auto exact = GenerateTestPlan(*campaign_, exact_options);
  EXPECT_LE(exact.steps.size(), greedy.steps.size());
  EXPECT_DOUBLE_EQ(exact.coverage, 1.0);
}

TEST_F(TestPlanFixture, TimeModelAccounting) {
  TestPlanOptions options;
  options.seconds_per_measurement = 1.0;
  options.seconds_per_reconfiguration = 10.0;
  auto plan = GenerateTestPlan(*campaign_, options);
  EXPECT_NEAR(plan.estimated_time_s,
              static_cast<double>(plan.steps.size()) +
                  10.0 * static_cast<double>(plan.reconfigurations),
              1e-9);
}

TEST_F(TestPlanFixture, RenderListsMeasurements) {
  std::string out = RenderTestPlan(*plan_, *campaign_);
  EXPECT_NE(out.find("Test plan"), std::string::npos);
  EXPECT_NE(out.find("accept window"), std::string::npos);
  EXPECT_NE(out.find("plan fault coverage: 100%"), std::string::npos);
}

TEST_F(TestPlanFixture, MagnitudeModeLosesPhaseOnlyFaults) {
  // fR2 deviates the response in phase only (its magnitude stays inside
  // the tolerance window everywhere): a scalar magnitude tester cannot
  // cover it, and the plan must say so instead of pretending.
  TestPlanOptions options;
  options.mode = MeasurementMode::kMagnitude;
  auto plan = GenerateTestPlan(*campaign_, options);
  EXPECT_LT(plan.coverage, 1.0);
  bool fr2_uncovered = false;
  for (const auto& f : plan.uncovered) {
    if (f.ShortLabel() == "fR2") fr2_uncovered = true;
  }
  EXPECT_TRUE(fr2_uncovered);
  // The complex-mode plan covers everything.
  EXPECT_DOUBLE_EQ(plan_->coverage, 1.0);
}

TEST(TestPlanErrors, SyntheticCampaignRejected) {
  auto campaign = testdata::PaperCampaign();
  EXPECT_THROW(GenerateTestPlan(campaign), util::AnalysisError);
}

TEST(TestPlanErrors, RowOutOfRange) {
  auto campaign = testdata::PaperCampaign();
  TestPlanOptions options;
  options.rows = {99};
  EXPECT_THROW(GenerateTestPlan(campaign, options), util::AnalysisError);
}

}  // namespace
}  // namespace mcdft::core
