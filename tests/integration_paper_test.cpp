// End-to-end reproduction test: the complete pipeline — circuit build, DFT
// transform, Monte-Carlo tolerance envelope, fault simulation, covering
// optimization — on the default biquad, pinning the qualitative shape of
// the paper's results (the quantitative paper numbers are validated
// separately in core_optimizer_test.cpp against the synthetic paper data).
#include <gtest/gtest.h>

#include "circuits/biquad.hpp"
#include "core/report.hpp"

namespace mcdft {
namespace {

class PaperPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new core::DftCircuit(circuits::BuildDftBiquad());
    fault_list_ = new std::vector<faults::Fault>(
        faults::MakeDeviationFaults(circuit_->Circuit()));
    campaign_ = new core::CampaignResult(core::RunCampaign(
        *circuit_, *fault_list_, circuit_->Space().AllNonTransparent(),
        core::MakePaperCampaignOptions()));
  }

  static void TearDownTestSuite() {
    delete campaign_;
    delete fault_list_;
    delete circuit_;
    campaign_ = nullptr;
    fault_list_ = nullptr;
    circuit_ = nullptr;
  }

  static core::DftCircuit* circuit_;
  static std::vector<faults::Fault>* fault_list_;
  static core::CampaignResult* campaign_;
};

core::DftCircuit* PaperPipelineTest::circuit_ = nullptr;
std::vector<faults::Fault>* PaperPipelineTest::fault_list_ = nullptr;
core::CampaignResult* PaperPipelineTest::campaign_ = nullptr;

TEST_F(PaperPipelineTest, FaultListMatchesPaperUniverse) {
  // 20% deviations on all resistors and capacitors: 8 faults.
  ASSERT_EQ(fault_list_->size(), 8u);
  EXPECT_EQ((*fault_list_)[0].Label(), "fR1(+20%)");
}

TEST_F(PaperPipelineTest, FunctionalConfigurationHasPoorTestability) {
  // Paper Graph 1: initial <w-det> = 12.5%, coverage 25%.  Our biquad at
  // the default operating point gives <w-det> ~ 14% with partial coverage;
  // the load-bearing property is that C0 alone is far from sufficient.
  const double c0_wdet = campaign_->PerConfig()[0].AverageOmegaDet();
  EXPECT_GT(c0_wdet, 0.05);
  EXPECT_LT(c0_wdet, 0.25);
  EXPECT_LT(campaign_->Coverage({0}), 1.0);
}

TEST_F(PaperPipelineTest, MultiConfigurationReachesFullCoverage) {
  // Paper Sec. 3.2: FC goes to 100% using the new test configurations.
  EXPECT_DOUBLE_EQ(campaign_->Coverage(), 1.0);
}

TEST_F(PaperPipelineTest, DftImprovesAverageOmegaDetSeveralFold) {
  // Paper Graph 2: 12.5% -> 68.3% (a 5.5x improvement).  We require at
  // least 2.5x on our substitute circuit (measured ~3.6x).
  const double initial = campaign_->PerConfig()[0].AverageOmegaDet();
  const double brute = campaign_->AverageOmegaDet();
  EXPECT_GT(brute, 2.5 * initial);
}

TEST_F(PaperPipelineTest, EveryConfigurationContributesConsistentData) {
  auto matrix = campaign_->DetectabilityMatrix();
  auto omega = campaign_->OmegaTable();
  for (std::size_t i = 0; i < campaign_->ConfigCount(); ++i) {
    for (std::size_t j = 0; j < campaign_->FaultCount(); ++j) {
      EXPECT_EQ(matrix[i][j], omega[i][j] > 0.0);
    }
  }
}

TEST_F(PaperPipelineTest, EssentialConfigurationsExist) {
  core::DftOptimizer optimizer(*circuit_, *campaign_);
  auto f = optimizer.SolveFundamental();
  EXPECT_TRUE(f.undetectable.empty());
  EXPECT_GE(f.essential.LiteralCount(), 1u);
  EXPECT_FALSE(f.minimal_covers.empty());
  // Every minimal cover contains the essentials.
  for (const auto& cover : f.minimal_covers) {
    EXPECT_TRUE(f.essential.SubsetOf(cover));
  }
}

TEST_F(PaperPipelineTest, ConfigCountOptimizationShrinksTheSet) {
  // Paper Sec. 4.2: a small subset of the 7 configurations suffices.
  core::DftOptimizer optimizer(*circuit_, *campaign_);
  auto sel = optimizer.OptimizeConfigurationCount();
  EXPECT_LE(sel.selected.configs.size(), 4u);
  EXPECT_DOUBLE_EQ(sel.selected.coverage, 1.0);
  // 3rd-order: the winner has the best <w-det> among ties.
  for (const auto& s : sel.tied) {
    EXPECT_LE(s.avg_omega_det, sel.selected.avg_omega_det + 1e-12);
  }
  // The optimized subset sacrifices <w-det> versus brute force (the
  // "price to be paid for a short test procedure").
  EXPECT_LE(sel.selected.avg_omega_det, campaign_->AverageOmegaDet() + 1e-12);
}

TEST_F(PaperPipelineTest, PartialDftNeedsFewerOpamps) {
  // Paper Sec. 4.3: only 2 of the 3 opamps must be configurable.
  core::DftOptimizer optimizer(*circuit_, *campaign_);
  auto part = optimizer.OptimizePartialDft();
  EXPECT_EQ(part.opamps.size(), 2u);
  EXPECT_EQ(part.permitted_rows.size(), 4u);  // 2^2 configurations
  EXPECT_DOUBLE_EQ(part.usage_all.coverage, 1.0);
  // The partial implementation pays with <w-det> versus brute force.
  EXPECT_LE(part.usage_all.avg_omega_det,
            campaign_->AverageOmegaDet() + 1e-12);
}

TEST_F(PaperPipelineTest, ExactCoverAgreesWithPetrickPath) {
  core::DftOptimizer optimizer(*circuit_, *campaign_);
  auto sel = optimizer.OptimizeConfigurationCount();
  auto exact = optimizer.OptimizeConfigurationCountExact();
  EXPECT_DOUBLE_EQ(exact.cost, sel.selected.cost);
  auto greedy = optimizer.OptimizeConfigurationCountGreedy();
  EXPECT_GE(greedy.cost, exact.cost);
  EXPECT_DOUBLE_EQ(greedy.coverage, 1.0);
}

TEST_F(PaperPipelineTest, ReportsRenderWithoutError) {
  core::DftOptimizer optimizer(*circuit_, *campaign_);
  auto f = optimizer.SolveFundamental();
  EXPECT_FALSE(core::RenderDetectabilityMatrix(*campaign_).empty());
  EXPECT_FALSE(core::RenderOmegaTable(*campaign_).empty());
  EXPECT_FALSE(core::RenderFundamental(f, *campaign_).empty());
}

TEST_F(PaperPipelineTest, DeterministicAcrossRuns) {
  auto campaign2 = core::RunCampaign(*circuit_, *fault_list_,
                                     circuit_->Space().AllNonTransparent(),
                                     core::MakePaperCampaignOptions());
  EXPECT_EQ(campaign_->OmegaTable(), campaign2.OmegaTable());
}

}  // namespace
}  // namespace mcdft
