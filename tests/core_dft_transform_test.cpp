#include "core/dft_transform.hpp"

#include <gtest/gtest.h>

#include "circuits/biquad.hpp"
#include "spice/ac_analysis.hpp"

namespace mcdft::core {
namespace {

TEST(DftTransform, FullTransformMakesEveryOpampConfigurable) {
  DftCircuit dft = circuits::BuildDftBiquad();
  EXPECT_EQ(dft.ConfigurableOpamps().size(), 3u);
  EXPECT_EQ(dft.Chain().size(), 3u);
  for (const auto& name : dft.ConfigurableOpamps()) {
    const auto& op =
        static_cast<const spice::Opamp&>(dft.Circuit().GetElement(name));
    EXPECT_TRUE(op.IsConfigurable());
    EXPECT_EQ(op.Mode(), spice::OpampMode::kNormal);
  }
}

TEST(DftTransform, InTestChainWiring) {
  DftCircuit dft = circuits::BuildDftBiquad();
  const auto& nl = dft.Circuit();
  const auto& op1 = static_cast<const spice::Opamp&>(nl.GetElement("OP1"));
  const auto& op2 = static_cast<const spice::Opamp&>(nl.GetElement("OP2"));
  const auto& op3 = static_cast<const spice::Opamp&>(nl.GetElement("OP3"));
  EXPECT_EQ(op1.InTest(), nl.FindNode("in"));
  EXPECT_EQ(op2.InTest(), op1.Out());
  EXPECT_EQ(op3.InTest(), op2.Out());
}

TEST(DftTransform, PartialSubsetKeepsChainTaps) {
  // Partial DFT over {OP1, OP3}: OP3's test input still taps OP2's output
  // (the physical predecessor), so shared configurations of the full and
  // partial circuits are electrically identical.
  auto block = circuits::BuildBiquad();
  DftCircuit dft = DftCircuit::Transform(block, {"OP1", "OP3"});
  EXPECT_EQ(dft.ConfigurableOpamps(),
            (std::vector<std::string>{"OP1", "OP3"}));
  const auto& nl = dft.Circuit();
  const auto& op2 = static_cast<const spice::Opamp&>(nl.GetElement("OP2"));
  const auto& op3 = static_cast<const spice::Opamp&>(nl.GetElement("OP3"));
  EXPECT_FALSE(op2.IsConfigurable());
  EXPECT_EQ(op3.InTest(), op2.Out());
}

TEST(DftTransform, SubsetOrderFollowsChainOrder) {
  auto block = circuits::BuildBiquad();
  DftCircuit dft = DftCircuit::Transform(block, {"OP3", "OP1"});
  EXPECT_EQ(dft.ConfigurableOpamps(),
            (std::vector<std::string>{"OP1", "OP3"}));
}

TEST(DftTransform, UnknownOpampThrows) {
  auto block = circuits::BuildBiquad();
  EXPECT_THROW(DftCircuit::Transform(block, {"OP9"}), util::NetlistError);
}

TEST(DftTransform, NonOpampInChainThrows) {
  auto block = circuits::BuildBiquad();
  block.opamps.push_back("R1");
  EXPECT_THROW(DftCircuit::Transform(block), util::NetlistError);
}

TEST(DftTransform, EmptyChainThrows) {
  auto block = circuits::BuildBiquad();
  block.opamps.clear();
  EXPECT_THROW(DftCircuit::Transform(block), util::NetlistError);
}

TEST(DftTransform, ApplyConfigurationSwitchesModes) {
  DftCircuit dft = circuits::BuildDftBiquad();
  dft.ApplyConfiguration(ConfigVector::FromIndex(5, 3));  // 101
  const auto& nl = dft.Circuit();
  EXPECT_EQ(static_cast<const spice::Opamp&>(nl.GetElement("OP1")).Mode(),
            spice::OpampMode::kFollower);
  EXPECT_EQ(static_cast<const spice::Opamp&>(nl.GetElement("OP2")).Mode(),
            spice::OpampMode::kNormal);
  EXPECT_EQ(static_cast<const spice::Opamp&>(nl.GetElement("OP3")).Mode(),
            spice::OpampMode::kFollower);
  EXPECT_EQ(dft.CurrentConfiguration().Index(), 5u);
}

TEST(DftTransform, ApplyConfigurationWrongWidthThrows) {
  DftCircuit dft = circuits::BuildDftBiquad();
  EXPECT_THROW(dft.ApplyConfiguration(ConfigVector::FromIndex(1, 2)),
               util::OptimizationError);
}

TEST(DftTransform, ScopedConfigurationRestoresFunctional) {
  DftCircuit dft = circuits::BuildDftBiquad();
  {
    ScopedConfiguration sc(dft, ConfigVector::FromIndex(3, 3));
    EXPECT_EQ(dft.CurrentConfiguration().Index(), 3u);
  }
  EXPECT_TRUE(dft.CurrentConfiguration().IsFunctional());
}

TEST(DftTransform, CloneIsIndependent) {
  DftCircuit dft = circuits::BuildDftBiquad();
  DftCircuit copy = dft.Clone();
  copy.ApplyConfiguration(ConfigVector::FromIndex(7, 3));
  EXPECT_TRUE(dft.CurrentConfiguration().IsFunctional());
  EXPECT_TRUE(copy.CurrentConfiguration().IsTransparent());
}

TEST(DftTransform, TransparentConfigurationIsIdentity) {
  // With all opamps in follower mode, the circuit performs the identity
  // function from primary input to primary output (paper Sec. 3.1).
  DftCircuit dft = circuits::BuildDftBiquad();
  dft.ApplyConfiguration(ConfigVector::FromIndex(7, 3));
  spice::AcAnalyzer analyzer(dft.Circuit());
  spice::Probe probe{dft.Circuit().FindNode(dft.OutputNode()), spice::kGround,
                     "v(out)"};
  auto r = analyzer.Run(spice::SweepSpec::Decade(10.0, 1e5, 10), probe);
  for (std::size_t i = 0; i < r.PointCount(); ++i) {
    EXPECT_NEAR(r.MagnitudeAt(i), 1.0, 1e-4) << "f=" << r.freqs_hz[i];
    EXPECT_NEAR(r.PhaseDegAt(i), 0.0, 0.1);
  }
}

TEST(DftTransform, FunctionalConfigurationMatchesUnmodifiedCircuit) {
  // DFT insertion in configuration C0 must not change the transfer
  // function at all (the whole point of the technique).
  auto block = circuits::BuildBiquad();
  spice::AcAnalyzer before(block.netlist);
  spice::Probe probe_before{block.netlist.FindNode("out3"), spice::kGround,
                            "v"};
  auto sweep = spice::SweepSpec::Decade(10.0, 1e5, 20);
  auto r_before = before.Run(sweep, probe_before);

  DftCircuit dft = circuits::BuildDftBiquad();
  spice::AcAnalyzer after(dft.Circuit());
  spice::Probe probe_after{dft.Circuit().FindNode("out3"), spice::kGround, "v"};
  auto r_after = after.Run(sweep, probe_after);

  for (std::size_t i = 0; i < r_before.PointCount(); ++i) {
    EXPECT_NEAR(std::abs(r_before.values[i] - r_after.values[i]), 0.0, 1e-9);
  }
}

TEST(DftTransform, SharedConfigsOfFullAndPartialAgree) {
  // Configuration (1,-,1) on the partial {OP1, OP3} circuit equals C5 on
  // the full circuit.
  auto sweep = spice::SweepSpec::Decade(10.0, 1e5, 10);
  DftCircuit full = circuits::BuildDftBiquad();
  full.ApplyConfiguration(ConfigVector::FromBits("101"));
  spice::AcAnalyzer fa(full.Circuit());
  auto rf = fa.Run(sweep, {full.Circuit().FindNode("out3"), spice::kGround, "v"});

  DftCircuit part =
      DftCircuit::Transform(circuits::BuildBiquad(), {"OP1", "OP3"});
  part.ApplyConfiguration(ConfigVector::FromBits("11"));
  spice::AcAnalyzer pa(part.Circuit());
  auto rp = pa.Run(sweep, {part.Circuit().FindNode("out3"), spice::kGround, "v"});

  for (std::size_t i = 0; i < rf.PointCount(); ++i) {
    EXPECT_NEAR(std::abs(rf.values[i] - rp.values[i]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace mcdft::core
