#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mcdft::util::trace {
namespace {

std::uint64_t CountOf(const std::vector<SpanStats>& spans,
                      const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return s.count;
  }
  return 0;
}

TEST(Trace, SpanAggregatesByName) {
  metrics::ScopedEnable on;
  const auto before = Capture();
  for (int i = 0; i < 3; ++i) {
    Span span("test.trace.loop");
  }
  const auto delta = Delta(before, Capture());
  EXPECT_EQ(CountOf(delta, "test.trace.loop"), 3u);
}

TEST(Trace, SpanMeasuresWallTime) {
  metrics::ScopedEnable on;
  const auto before = Capture();
  {
    Span span("test.trace.sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto delta = Delta(before, Capture());
  for (const auto& s : delta) {
    if (s.name == "test.trace.sleep") {
      EXPECT_GE(s.total_wall_ns, 4'000'000u);  // >= 4 ms of the 5 slept
      EXPECT_GE(s.max_wall_ns, s.total_wall_ns / s.count);
      return;
    }
  }
  FAIL() << "span test.trace.sleep not recorded";
}

TEST(Trace, DisabledSpanRecordsNothing) {
  metrics::ScopedEnable off(false);
  const auto before = Capture();
  {
    Span span("test.trace.disabled");
  }
  EXPECT_EQ(CountOf(Delta(before, Capture()), "test.trace.disabled"), 0u);
}

TEST(Trace, EndIsIdempotent) {
  metrics::ScopedEnable on;
  const auto before = Capture();
  {
    Span span("test.trace.end");
    span.End();
    span.End();  // destructor adds nothing more either
  }
  EXPECT_EQ(CountOf(Delta(before, Capture()), "test.trace.end"), 1u);
}

TEST(Trace, DeltaDropsUntouchedSpans) {
  metrics::ScopedEnable on;
  {
    Span span("test.trace.old");
  }
  const auto before = Capture();
  {
    Span span("test.trace.fresh");
  }
  const auto delta = Delta(before, Capture());
  EXPECT_EQ(CountOf(delta, "test.trace.old"), 0u);
  EXPECT_EQ(CountOf(delta, "test.trace.fresh"), 1u);
}

}  // namespace
}  // namespace mcdft::util::trace
