// Experiment X1 — the paper's announced extension (Sec. 5: "viability
// through consideration of more complex analog circuits"): run the full
// multi-configuration DFT pipeline on every circuit in the zoo and report
// the same headline metrics as for the biquad.
//
// For the 9-opamp cascade the 2^9 configuration space is pre-selected
// structurally (configurations with at most 2 followers), which is exactly
// the direction the paper's conclusion proposes against the
// fault-simulation bottleneck.
#include <chrono>

#include "circuits/zoo.hpp"
#include "common.hpp"

#include "util/parallel.hpp"
#include "util/strings.hpp"

int main() {
  using namespace mcdft;
  using Clock = std::chrono::steady_clock;
  bench::PrintHeader("X1: the paper's extension to complex circuits",
                     "Sec. 5 discussion (future work implemented)");

  util::Table summary;
  summary.SetHeader({"circuit", "opamps", "configs", "faults", "C0 FC%",
                     "max FC%", "C0 <w>%", "brute <w>%", "S_opt", "opt <w>%",
                     "partial opamps", "sim [ms]"});

  // One task per zoo circuit; rows are rendered into per-index slots and
  // printed in zoo order afterwards.  Each circuit's campaign runs serial
  // inside its worker (nested parallel sections don't oversubscribe), so
  // per-circuit timings stay comparable to a serial run.
  const auto& zoo = circuits::Zoo();
  std::vector<std::vector<std::string>> rows(zoo.size());
  util::ParallelFor(0, zoo.size(), [&](std::size_t zi) {
    const auto& entry = zoo[zi];
    auto block = entry.build();
    core::DftCircuit circuit = core::DftCircuit::Transform(block);
    auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());

    auto options = core::MakePaperCampaignOptions();
    options.points_per_decade = 25;
    options.tolerance->samples = 24;

    // Structural configuration pre-selection for large spaces.
    auto space = circuit.Space();
    std::vector<core::ConfigVector> configs;
    if (space.OpampCount() > 5) {
      configs = space.UpToKFollowers(2);
    } else {
      configs = space.AllNonTransparent();
    }

    const auto t0 = Clock::now();
    auto campaign = core::RunCampaign(circuit, fault_list, configs, options);
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();

    const std::size_t c0 = campaign.RowOf(
        core::ConfigVector(circuit.ConfigurableOpamps().size()));
    core::DftOptimizer optimizer(circuit, campaign);

    std::string sopt = "-";
    std::string opt_w = "-";
    std::string partial = "-";
    try {
      auto sel = optimizer.OptimizeConfigurationCount();
      sopt = std::to_string(sel.selected.configs.size()) + " cfg";
      opt_w = util::FormatTrimmed(100.0 * sel.selected.avg_omega_det, 1);
      auto part = optimizer.OptimizePartialDft();
      partial = std::to_string(part.opamps.size()) + "/" +
                std::to_string(circuit.ConfigurableOpamps().size());
    } catch (const util::Error& e) {
      sopt = "n/a";
    }

    rows[zi] = {entry.name, std::to_string(space.OpampCount()),
                std::to_string(configs.size()),
                std::to_string(fault_list.size()),
                util::FormatTrimmed(100.0 * campaign.Coverage({c0}), 1),
                util::FormatTrimmed(100.0 * campaign.Coverage(), 1),
                util::FormatTrimmed(100.0 * campaign.AverageOmegaDet({c0}), 1),
                util::FormatTrimmed(100.0 * campaign.AverageOmegaDet(), 1),
                sopt, opt_w, partial, util::FormatTrimmed(ms, 0)};
  });
  for (const auto& row : rows) summary.AddRow(row);
  std::printf("%s\n", summary.Render().c_str());
  std::printf(
      "Reading: the biquad's pattern generalizes -- reconfiguration lifts\n"
      "coverage and <w-det> on every topology, and the optimizer finds\n"
      "small covering sets; leapfrog/cascade show the fault-simulation\n"
      "cost the paper's conclusion worries about, and the structural\n"
      "pre-selection (<= 2 followers) keeps it tractable.\n");
  return 0;
}
