// Experiment E5 — paper Graph 2: per-fault omega-detectability of the
// initial filter versus the DFT-modified filter (best case over all
// configurations), plus the headline <w-det> improvement.
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E5: testability improvement by multi-configuration DFT",
                     "Graph 2 (initial vs DFT-modified w-detectability)");

  auto fixture = bench::PaperFixture::Make();
  const auto& campaign = fixture.campaign;
  const std::size_t c0 = campaign.RowOf(core::ConfigVector(3));

  std::vector<double> initial, dft;
  for (const auto& d : campaign.PerConfig()[c0].faults) {
    initial.push_back(d.omega_detectability);
  }
  for (const auto& d : campaign.BestCase()) {
    dft.push_back(d.omega_detectability);
  }
  std::printf("%s\n",
              core::RenderOmegaBars(
                  campaign.Faults(),
                  {{"initial", initial}, {"DFT-modified", dft}},
                  "w-detectability: initial vs DFT-modified (paper Graph 2)")
                  .c_str());

  const double w_init = campaign.AverageOmegaDet({c0});
  const double w_dft = campaign.AverageOmegaDet();
  std::printf("Summary vs paper:\n");
  bench::PrintComparison("<w-det> initial filter",
                         100.0 * bench::PaperReference::kInitialAvgOmegaDet,
                         100.0 * w_init);
  bench::PrintComparison("<w-det> DFT-modified filter",
                         100.0 * bench::PaperReference::kBruteAvgOmegaDet,
                         100.0 * w_dft);
  bench::PrintComparison("improvement factor",
                         bench::PaperReference::kBruteAvgOmegaDet /
                             bench::PaperReference::kInitialAvgOmegaDet,
                         w_dft / w_init, "x");
  bench::PrintComparison("fault coverage after DFT",
                         100.0 * bench::PaperReference::kDftCoverage,
                         100.0 * campaign.Coverage());
  return 0;
}
