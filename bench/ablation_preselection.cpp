// Experiment X4 — configuration pre-selection ablation: the paper's
// conclusion identifies detectability-matrix construction ("extensive
// fault simulation") as the bottleneck and proposes selecting a candidate
// subset of configurations from structural information first.  This bench
// quantifies that idea: for each circuit, run (a) the full campaign over
// all candidate configurations and (b) the cheap sensitivity screen
// followed by the full campaign on the selected subset only, and compare
// cost and result quality.
#include <chrono>

#include "circuits/zoo.hpp"
#include "common.hpp"
#include "core/preselection.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

int main() {
  using namespace mcdft;
  using Clock = std::chrono::steady_clock;
  bench::PrintHeader("X4: configuration pre-selection ablation",
                     "Sec. 5 conclusion (fault-simulation bottleneck)");

  util::Table t;
  t.SetHeader({"circuit", "cands", "full [ms]", "FC%", "<w>%", "kept",
               "screen+sub [ms]", "FC%", "<w>%", "speedup"});

  // One task per circuit; rows are collected by index and printed in the
  // fixed circuit order.  Campaigns run serial inside each worker, keeping
  // the full-vs-screened timing comparison meaningful.
  const std::vector<const char*> names = {"biquad", "khn", "leapfrog",
                                          "cascade6"};
  std::vector<std::vector<std::string>> rows(names.size());
  util::ParallelFor(0, names.size(), [&](std::size_t ni) {
    const char* name = names[ni];
    const auto& entry = circuits::FindInZoo(name);
    auto block = entry.build();
    core::DftCircuit circuit = core::DftCircuit::Transform(block);
    auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());

    auto space = circuit.Space();
    std::vector<core::ConfigVector> candidates;
    if (space.OpampCount() > 5) {
      candidates = space.UpToKFollowers(2);
    } else {
      candidates = space.AllNonTransparent();
    }

    auto options = core::MakePaperCampaignOptions();
    options.points_per_decade = 25;
    options.tolerance->samples = 24;

    const auto t0 = Clock::now();
    auto full = core::RunCampaign(circuit, fault_list, candidates, options);
    const double full_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    const auto t1 = Clock::now();
    core::PreselectionOptions pre_options;
    pre_options.extra_configs = space.OpampCount();  // headroom scales up
    auto pre = core::PreselectConfigurations(circuit, fault_list, candidates,
                                             pre_options);
    auto sub = core::RunCampaign(circuit, fault_list, pre.selected, options);
    const double sub_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t1).count();

    rows[ni] = {name, std::to_string(candidates.size()),
                util::FormatTrimmed(full_ms, 0),
                util::FormatTrimmed(100.0 * full.Coverage(), 1),
                util::FormatTrimmed(100.0 * full.AverageOmegaDet(), 1),
                std::to_string(pre.selected.size()),
                util::FormatTrimmed(sub_ms, 0),
                util::FormatTrimmed(100.0 * sub.Coverage(), 1),
                util::FormatTrimmed(100.0 * sub.AverageOmegaDet(), 1),
                util::FormatTrimmed(full_ms / sub_ms, 2) + "x"};
  });
  for (const auto& row : rows) t.AddRow(row);
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "Reading: the screen (coarse-grid sensitivities + an analytic\n"
      "tolerance-envelope proxy) keeps a small complementary subset of the\n"
      "candidate configurations; the expensive Monte-Carlo campaign then\n"
      "runs only on those.  Coverage is preserved where the proxy tracks\n"
      "the real envelope; some omega-detectability headroom is the price --\n"
      "exactly the trade the paper anticipates for its future-work idea.\n");
  return 0;
}
