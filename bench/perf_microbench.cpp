// P1 — performance microbenchmarks (google-benchmark): the solver kernels
// and pipeline stages whose cost dominates a multi-configuration campaign.
// The paper's conclusion identifies fault-simulation volume as the
// technique's bottleneck; these benches quantify each contributor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "boolcov/petrick.hpp"
#include "boolcov/setcover.hpp"
#include "circuits/biquad.hpp"
#include "circuits/cascade.hpp"
#include "circuits/zoo.hpp"
#include "core/campaign.hpp"
#include "faults/injector.hpp"
#include "faults/simulator.hpp"
#include "faults/stamp_delta.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/lu.hpp"
#include "linalg/simd/kernels.hpp"
#include "linalg/sparse_lu.hpp"
#include "testability/tolerance.hpp"

namespace {

using namespace mcdft;

linalg::Matrix RandomDense(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  linalg::Matrix m(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.At(r, c) = linalg::Complex(u(rng), u(rng));
    }
    m.At(r, r) += linalg::Complex(2.0 * n, 0.0);
  }
  return m;
}

linalg::CsrMatrix RandomSparse(std::size_t n, double density,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  linalg::TripletMatrix t(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    t.Add(r, r, linalg::Complex(3.0 + u(rng), u(rng)));
    for (std::size_t c = 0; c < n; ++c) {
      if (r != c && coin(rng) < density) {
        t.Add(r, c, linalg::Complex(u(rng), u(rng)) * 0.3);
      }
    }
  }
  return linalg::CsrMatrix(t);
}

void BM_DenseLuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a = RandomDense(n, 42);
  linalg::Vector b(n, linalg::Complex(1.0, 0.5));
  for (auto _ : state) {
    linalg::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.Solve(b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_SparseLuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::CsrMatrix a = RandomSparse(n, 4.0 / static_cast<double>(n), 42);
  linalg::Vector b(n, linalg::Complex(1.0, 0.5));
  for (auto _ : state) {
    linalg::SparseLu lu(a);
    benchmark::DoNotOptimize(lu.Solve(b));
  }
}
BENCHMARK(BM_SparseLuFactorSolve)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_BiquadAcPoint(benchmark::State& state) {
  auto block = circuits::BuildBiquad();
  spice::MnaSystem system(block.netlist);
  double f = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.SolveAcHz(f));
    f = f < 1e5 ? f * 1.01 : 100.0;
  }
}
BENCHMARK(BM_BiquadAcPoint);

void BM_BiquadAcSweep(benchmark::State& state) {
  auto block = circuits::BuildBiquad();
  const auto sweep =
      spice::SweepSpec::Decade(10.0, 1e5, static_cast<std::size_t>(state.range(0)));
  spice::AcAnalyzer analyzer(block.netlist);
  spice::Probe probe{block.netlist.FindNode("out3"), spice::kGround, "v"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Run(sweep, probe));
  }
  state.counters["points"] = static_cast<double>(sweep.PointCount());
}
BENCHMARK(BM_BiquadAcSweep)->Arg(10)->Arg(50);

void BM_FaultSimulationCampaign(benchmark::State& state) {
  auto block = circuits::BuildBiquad();
  auto faults_list = faults::MakeDeviationFaults(block.netlist);
  faults::FaultSimulator sim(
      block.netlist, spice::SweepSpec::Decade(10.0, 1e5, 25),
      spice::Probe{block.netlist.FindNode("out3"), spice::kGround, "v"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(faults_list));
  }
}
BENCHMARK(BM_FaultSimulationCampaign);

void BM_ToleranceEnvelope(benchmark::State& state) {
  auto block = circuits::BuildBiquad();
  auto faults_list = faults::MakeDeviationFaults(block.netlist);
  std::vector<std::string> sites;
  for (const auto& f : faults_list) sites.push_back(f.Device());
  testability::ToleranceModel model;
  model.samples = static_cast<std::size_t>(state.range(0));
  const auto sweep = spice::SweepSpec::Decade(10.0, 1e5, 25);
  spice::Probe probe{block.netlist.FindNode("out3"), spice::kGround, "v"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(testability::ComputeToleranceEnvelope(
        block.netlist, sweep, probe, sites, model, 0.25));
  }
}
BENCHMARK(BM_ToleranceEnvelope)->Arg(16)->Arg(48);

void BM_FullBiquadCampaign(benchmark::State& state) {
  core::DftCircuit circuit = circuits::BuildDftBiquad();
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  auto options = core::MakePaperCampaignOptions();
  options.points_per_decade = 10;
  options.tolerance->samples = 8;
  auto configs = circuit.Space().AllNonTransparent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::RunCampaign(circuit, fault_list, configs, options));
  }
}
BENCHMARK(BM_FullBiquadCampaign);

void BM_Cascade6AcPoint(benchmark::State& state) {
  auto block = circuits::BuildCascade6();
  spice::MnaOptions options;
  options.backend = state.range(0) == 0 ? spice::SolverBackend::kDense
                                        : spice::SolverBackend::kSparse;
  spice::MnaSystem system(block.netlist, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.SolveAcHz(1234.5));
  }
  state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(BM_Cascade6AcPoint)->Arg(0)->Arg(1);

// --- Low-rank fault-solve kernel -------------------------------------
//
// The per-(fault, frequency) cell of a frequency-major campaign, isolated:
// one nominal factorization amortized over all of a circuit's deviation
// faults, each solved either by an SMW rank update (stamp delta + two
// triangular solves + k-by-k system) or by the classic numeric
// refactorization of the faulty matrix.  The pair quantifies the kernel
// speedup that bench_campaign_throughput observes end to end.
constexpr const char* kLowRankCircuits[] = {"biquad", "cascade6", "leapfrog"};

void BM_FaultSolveSmwUpdate(benchmark::State& state) {
  auto block =
      circuits::FindInZoo(kLowRankCircuits[state.range(0)]).build();
  auto fault_list = faults::MakeDeviationFaults(block.netlist);
  spice::MnaSystem sys(block.netlist);
  const double omega = 2.0 * 3.141592653589793 * 1234.5;
  linalg::TripletMatrix a;
  linalg::Vector b;
  sys.Assemble(spice::AnalysisKind::kAc, omega, a, b);
  linalg::SparseLu lu{linalg::CsrMatrix(a)};
  linalg::LowRankUpdateSolver smw;
  smw.Bind(lu, b);

  struct Target {
    std::size_t index;
    spice::Element* element;
  };
  std::vector<Target> targets;
  for (const auto& f : fault_list) {
    targets.push_back(Target{sys.ElementIndexOf(f.Device()),
                             &block.netlist.GetElement(f.Device())});
  }
  faults::FaultStampDelta::Scratch scratch;
  linalg::LowRankPerturbation delta;
  for (auto _ : state) {
    for (std::size_t j = 0; j < fault_list.size(); ++j) {
      faults::FaultStampDelta::Compute(sys, *targets[j].element,
                                       targets[j].index, fault_list[j],
                                       spice::AnalysisKind::kAc, omega,
                                       scratch, delta);
      benchmark::DoNotOptimize(smw.Solve(delta));
    }
  }
  state.SetLabel(kLowRankCircuits[state.range(0)]);
  state.counters["faults"] = static_cast<double>(fault_list.size());
}
BENCHMARK(BM_FaultSolveSmwUpdate)->Arg(0)->Arg(1)->Arg(2);

// Same workload as BM_FaultSolveSmwUpdate, but the circuit's faults are
// gathered into multi-RHS SolveBatch calls of the given width (arg 1).
// Width 1 measures pure batching overhead; the wide rows show the SoA
// multi-RHS + SIMD payoff per fault.
void BM_SmwSolveBatched(benchmark::State& state) {
  auto block =
      circuits::FindInZoo(kLowRankCircuits[state.range(0)]).build();
  auto fault_list = faults::MakeDeviationFaults(block.netlist);
  spice::MnaSystem sys(block.netlist);
  const double omega = 2.0 * 3.141592653589793 * 1234.5;
  linalg::TripletMatrix a;
  linalg::Vector b;
  sys.Assemble(spice::AnalysisKind::kAc, omega, a, b);
  linalg::SparseLu lu{linalg::CsrMatrix(a)};
  linalg::LowRankUpdateSolver smw;
  smw.Bind(lu, b);

  struct Target {
    std::size_t index;
    spice::Element* element;
  };
  std::vector<Target> targets;
  for (const auto& f : fault_list) {
    targets.push_back(Target{sys.ElementIndexOf(f.Device()),
                             &block.netlist.GetElement(f.Device())});
  }
  const std::size_t width = static_cast<std::size_t>(state.range(1));
  faults::FaultStampDelta::Scratch scratch;
  std::vector<linalg::LowRankPerturbation> deltas(width);
  linalg::SmwBatch batch;
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < fault_list.size(); begin += width) {
      const std::size_t count =
          std::min(width, fault_list.size() - begin);
      for (std::size_t l = 0; l < count; ++l) {
        const std::size_t j = begin + l;
        faults::FaultStampDelta::Compute(sys, *targets[j].element,
                                         targets[j].index, fault_list[j],
                                         spice::AnalysisKind::kAc, omega,
                                         scratch, deltas[l]);
      }
      smw.SolveBatch(deltas.data(), count, batch);
      benchmark::DoNotOptimize(batch.Count());
    }
  }
  state.SetLabel(std::string(kLowRankCircuits[state.range(0)]) + "/" +
                 mcdft::linalg::simd::Active().name);
  state.counters["faults"] = static_cast<double>(fault_list.size());
  state.counters["batch"] = static_cast<double>(width);
}
BENCHMARK(BM_SmwSolveBatched)
    ->ArgsProduct({{0, 1, 2}, {1, 8, 32, 128}});

// The packed complex kernels in isolation, at the dispatched ISA level:
// broadcast-coefficient AXPY (the multi-RHS triangular-solve update) and
// per-lane-coefficient multiply-add (the blocked U*y correction).
void BM_SimdCaxpySub(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> x_re(m), x_im(m), y_re(m), y_im(m);
  for (std::size_t l = 0; l < m; ++l) {
    x_re[l] = u(rng); x_im[l] = u(rng); y_re[l] = u(rng); y_im[l] = u(rng);
  }
  const auto& kern = mcdft::linalg::simd::Active();
  for (auto _ : state) {
    kern.caxpy_sub(m, 0.75, -0.25, x_re.data(), x_im.data(), y_re.data(),
                   y_im.data());
    benchmark::DoNotOptimize(y_re.data());
    benchmark::DoNotOptimize(y_im.data());
  }
  state.SetLabel(kern.name);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SimdCaxpySub)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_SimdCmadd(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> a_re(m), a_im(m), x_re(m), x_im(m), y_re(m), y_im(m);
  for (std::size_t l = 0; l < m; ++l) {
    a_re[l] = u(rng); a_im[l] = u(rng);
    x_re[l] = u(rng); x_im[l] = u(rng);
    y_re[l] = u(rng); y_im[l] = u(rng);
  }
  const auto& kern = mcdft::linalg::simd::Active();
  for (auto _ : state) {
    kern.cmadd(m, a_re.data(), a_im.data(), x_re.data(), x_im.data(),
               y_re.data(), y_im.data());
    benchmark::DoNotOptimize(y_re.data());
    benchmark::DoNotOptimize(y_im.data());
  }
  state.SetLabel(kern.name);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SimdCmadd)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_FaultSolveRefactor(benchmark::State& state) {
  auto block =
      circuits::FindInZoo(kLowRankCircuits[state.range(0)]).build();
  auto fault_list = faults::MakeDeviationFaults(block.netlist);
  spice::MnaSystem sys(block.netlist);
  const double omega = 2.0 * 3.141592653589793 * 1234.5;
  linalg::TripletMatrix a;
  linalg::Vector b;
  sys.Assemble(spice::AnalysisKind::kAc, omega, a, b);
  linalg::CsrAssembly pattern(a);
  linalg::SparseLu cached{pattern.Matrix()};
  for (auto _ : state) {
    for (const auto& f : fault_list) {
      faults::ScopedFaultInjection injection(block.netlist, f);
      sys.Assemble(spice::AnalysisKind::kAc, omega, a, b);
      pattern.Update(a);
      if (!cached.Refactor(pattern.Matrix())) {
        cached = linalg::SparseLu{pattern.Matrix()};
      }
      benchmark::DoNotOptimize(cached.Solve(b));
    }
  }
  state.SetLabel(kLowRankCircuits[state.range(0)]);
  state.counters["faults"] = static_cast<double>(fault_list.size());
}
BENCHMARK(BM_FaultSolveRefactor)->Arg(0)->Arg(1)->Arg(2);

boolcov::CoverProblem RandomCover(std::size_t vars, std::size_t clauses,
                                  double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  boolcov::CoverProblem p(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    boolcov::Cube lits(vars);
    while (lits.Empty()) {
      for (std::size_t v = 0; v < vars; ++v) {
        if (coin(rng) < density) lits.Set(v);
      }
    }
    p.AddClause({lits, ""});
  }
  return p;
}

void BM_PetrickExpansion(benchmark::State& state) {
  auto p = RandomCover(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) + 4, 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boolcov::PetrickMinimalProducts(p));
  }
}
BENCHMARK(BM_PetrickExpansion)->Arg(7)->Arg(12)->Arg(16);

void BM_ExactSetCover(benchmark::State& state) {
  auto p = RandomCover(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) + 10, 0.2, 9);
  auto w = boolcov::UnitWeights(p.VariableCount());
  for (auto _ : state) {
    benchmark::DoNotOptimize(boolcov::ExactSetCover(p, w));
  }
}
BENCHMARK(BM_ExactSetCover)->Arg(16)->Arg(32)->Arg(48);

void BM_GreedySetCover(benchmark::State& state) {
  auto p = RandomCover(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) + 10, 0.2, 9);
  auto w = boolcov::UnitWeights(p.VariableCount());
  for (auto _ : state) {
    benchmark::DoNotOptimize(boolcov::GreedySetCover(p, w));
  }
}
BENCHMARK(BM_GreedySetCover)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
