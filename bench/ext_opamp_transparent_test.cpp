// Experiment X3 — opamp-internal fault testing through the transparent
// configuration (paper Sec. 3.1: "the transparent configuration ... is
// used to test faults inside opamps", ref [5]), plus fault diagnosis by
// configuration signature for both opamp and passive faults.
#include "common.hpp"
#include "core/diagnosis.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("X3: transparent-configuration opamp test + diagnosis",
                     "Sec. 3.1 transparent configuration usage (ref [5])");

  core::DftCircuit circuit = circuits::BuildDftBiquad();

  // --- Go/no-go screen in the transparent configuration -----------------
  auto result = core::RunOpampTransparentTest(circuit);
  std::printf("Opamp fault screen (all opamps in follower mode, the output\n"
              "must reproduce the input):\n");
  for (const auto& v : result.screen) {
    std::printf("  %-18s %sdetected   w-det = %5.1f%%  peak dev %5.1f%%\n",
                v.fault.Label().c_str(), v.detectable ? "" : "NOT ",
                100.0 * v.omega_detectability, 100.0 * v.peak_deviation);
  }
  std::printf("Screen coverage: %.1f%% of the opamp fault list\n\n",
              100.0 * result.screen_coverage);

  // --- Localization by quantized signatures ------------------------------
  std::printf("Localization campaign (transparent + single-follower "
              "configurations, 4-level dictionary):\n\n%s\n",
              core::RenderDiagnosis(result.diagnosis, result.localization)
                  .c_str());

  // --- Passive-fault diagnosis on the paper campaign --------------------
  auto fixture = bench::PaperFixture::Make();
  std::printf("Passive-fault diagnosis over the paper campaign (boolean "
              "signatures):\n\n%s\n",
              core::RenderDiagnosis(core::Diagnose(fixture.campaign),
                                    fixture.campaign)
                  .c_str());
  auto quantized = core::Diagnose(fixture.campaign, core::DiagnosisOptions{4});
  std::printf("... and with the 4-level dictionary: resolution %.1f%% -> "
              "%.1f%%, distinguishable pairs %.1f%% -> %.1f%%\n",
              100.0 * core::Diagnose(fixture.campaign).resolution,
              100.0 * quantized.resolution,
              100.0 * core::Diagnose(fixture.campaign)
                          .pairwise_distinguishability,
              100.0 * quantized.pairwise_distinguishability);
  std::printf(
      "\nReading: the DFT technique is not only a detection lever -- the\n"
      "configuration signatures localize faults, and the transparent\n"
      "configuration gives a cheap end-to-end opamp screen exactly as the\n"
      "paper describes.\n");
  return 0;
}
