// Experiment X2 — covering-engine ablation: Petrick's method (all minimal
// covers) versus exact branch-and-bound (one optimal cover) versus the
// greedy heuristic, on the paper's matrix, on the live biquad matrix and
// on random matrices of growing size.  This quantifies the design choice
// DESIGN.md calls out: Petrick gives the complete candidate list the
// 3rd-order requirement needs, but only the set-cover solvers scale.
#include <chrono>
#include <random>

#include "boolcov/petrick.hpp"
#include "boolcov/setcover.hpp"
#include "common.hpp"

#include "util/strings.hpp"

namespace {

using namespace mcdft;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string name;
  std::size_t vars;
  std::size_t clauses;
  std::string petrick;     // "#covers / min size / us"
  std::string exact;       // "size / nodes / us"
  std::string greedy;      // "size / us"
};

template <typename F>
double TimeUs(F&& f) {
  const auto t0 = Clock::now();
  f();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

Row Evaluate(const std::string& name, const boolcov::CoverProblem& problem) {
  Row row{name, problem.VariableCount(), problem.Clauses().size(), "", "", ""};

  try {
    std::vector<boolcov::Cube> sop;
    boolcov::PetrickOptions options;
    options.max_products = 50000;
    const double us = TimeUs([&] {
      sop = boolcov::PetrickMinimalProducts(problem, options);
    });
    std::size_t min_size = sop.empty() ? 0 : sop.front().LiteralCount();
    row.petrick = std::to_string(sop.size()) + " covers / min " +
                  std::to_string(min_size) + " / " +
                  util::FormatTrimmed(us, 0) + "us";
  } catch (const util::OptimizationError&) {
    row.petrick = "EXPLODED (limit)";
  }

  {
    boolcov::SetCoverResult r;
    const double us = TimeUs([&] {
      r = boolcov::ExactSetCover(problem,
                                 boolcov::UnitWeights(problem.VariableCount()));
    });
    row.exact = std::to_string(static_cast<std::size_t>(r.cost)) + " / " +
                std::to_string(r.stats.nodes_explored) + " nodes / " +
                util::FormatTrimmed(us, 0) + "us";
  }
  {
    boolcov::SetCoverResult r;
    const double us = TimeUs([&] {
      r = boolcov::GreedySetCover(problem,
                                  boolcov::UnitWeights(problem.VariableCount()));
    });
    row.greedy = std::to_string(static_cast<std::size_t>(r.cost)) + " / " +
                 util::FormatTrimmed(us, 0) + "us";
  }
  return row;
}

boolcov::CoverProblem PaperMatrixProblem() {
  std::vector<std::vector<bool>> m{
      {1, 0, 0, 1, 0, 0, 0, 0}, {0, 0, 1, 0, 1, 1, 0, 1},
      {1, 1, 0, 1, 1, 1, 1, 0}, {0, 0, 0, 0, 1, 1, 0, 0},
      {1, 1, 1, 1, 1, 0, 0, 0}, {0, 0, 1, 0, 0, 0, 0, 1},
      {1, 1, 0, 1, 0, 0, 0, 0}};
  return boolcov::BuildCoverProblem(
      m, {"fR1", "fR2", "fR3", "fR4", "fR5", "fR6", "fC1", "fC2"});
}

boolcov::CoverProblem RandomProblem(std::size_t vars, std::size_t clauses,
                                    double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  boolcov::CoverProblem p(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    boolcov::Cube lits(vars);
    while (lits.Empty()) {
      for (std::size_t v = 0; v < vars; ++v) {
        if (coin(rng) < density) lits.Set(v);
      }
    }
    p.AddClause({lits, "f" + std::to_string(c)});
  }
  return p;
}

}  // namespace

int main() {
  bench::PrintHeader("X2: covering-engine ablation",
                     "design-choice study (Petrick vs exact B&B vs greedy)");

  std::vector<Row> rows;
  rows.push_back(Evaluate("paper Fig.5 matrix", PaperMatrixProblem()));

  {
    auto fixture = bench::PaperFixture::Make();
    auto matrix = fixture.campaign.DetectabilityMatrix();
    std::vector<std::string> labels;
    for (const auto& f : fixture.campaign.Faults()) labels.push_back(f.Label());
    rows.push_back(Evaluate("simulated biquad matrix",
                            boolcov::BuildCoverProblem(matrix, labels)));
  }

  rows.push_back(Evaluate("random 10x12 d=0.3", RandomProblem(10, 12, 0.3, 1)));
  rows.push_back(Evaluate("random 16x20 d=0.25", RandomProblem(16, 20, 0.25, 2)));
  rows.push_back(Evaluate("random 24x30 d=0.2", RandomProblem(24, 30, 0.2, 3)));
  rows.push_back(Evaluate("random 40x60 d=0.15", RandomProblem(40, 60, 0.15, 4)));
  rows.push_back(Evaluate("random 64x96 d=0.1", RandomProblem(64, 96, 0.1, 5)));

  util::Table t;
  t.SetHeader({"problem", "vars", "clauses", "Petrick (all minimal covers)",
               "exact B&B", "greedy"});
  for (const auto& r : rows) {
    t.AddRow({r.name, std::to_string(r.vars), std::to_string(r.clauses),
              r.petrick, r.exact, r.greedy});
  }
  t.SetAlign(3, util::Table::Align::kLeft);
  t.SetAlign(4, util::Table::Align::kLeft);
  t.SetAlign(5, util::Table::Align::kLeft);
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "Reading: on paper-sized matrices Petrick is instant and returns the\n"
      "complete candidate list the 3rd-order tie-break needs; on larger\n"
      "spaces it explodes and the exact branch-and-bound (with greedy as a\n"
      "bound seed) is the right tool -- matching DESIGN.md's choice of\n"
      "Petrick-first with a set-cover fallback.\n");
  return 0;
}
