// Campaign throughput bench: wall time, MNA solves/sec and configs/sec for
// full fault campaigns on the biquad (paper operating point) and the
// 6-opamp cascade (X1 operating point: 25 points/decade, 24 Monte-Carlo
// samples, <= 2 followers), across thread counts and with the
// factorization cache on/off.  Writes BENCH_campaign.json next to the
// console table so EXPERIMENTS.md can cite machine-readable numbers.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/zoo.hpp"
#include "common.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace mcdft;

struct RunSpec {
  std::string label;
  std::size_t threads;
  bool cache;
  bool lowrank;  // frequency-major SMW fault solves (needs cache = true)
  bool batched;  // batched multi-RHS SMW solves (needs lowrank = true)
};

struct RunResult {
  RunSpec spec;
  double wall_s = 0.0;
  double solves_per_s = 0.0;
  double configs_per_s = 0.0;
  double speedup = 1.0;  // vs the serial no-cache baseline of the circuit
  std::uint64_t retries = 0;      // retry-ladder escalations during the run
  std::uint64_t quarantined = 0;  // quarantined (fault, omega) cells
};

struct CircuitReport {
  std::string name;
  std::size_t configs = 0;
  std::size_t faults = 0;
  std::size_t points = 0;
  std::size_t samples = 0;
  std::vector<RunResult> runs;
};

CircuitReport BenchCircuit(const char* name, std::size_t points_per_decade,
                           std::size_t samples,
                           const std::vector<RunSpec>& specs) {
  const auto& entry = circuits::FindInZoo(name);
  auto block = entry.build();
  core::DftCircuit circuit = core::DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());

  auto space = circuit.Space();
  const std::vector<core::ConfigVector> configs =
      space.OpampCount() > 5 ? space.UpToKFollowers(2)
                             : space.AllNonTransparent();

  CircuitReport report;
  report.name = name;
  report.configs = configs.size();
  report.faults = fault_list.size();
  report.samples = samples;

  for (const RunSpec& spec : specs) {
    auto options = core::MakePaperCampaignOptions();
    options.points_per_decade = points_per_decade;
    options.tolerance->samples = samples;
    options.threads = spec.threads;
    options.mna.cache_factorization = spec.cache;
    options.mna.lowrank_fault_updates = spec.lowrank;
    if (!spec.batched) options.mna.fault_batch = 0;

    const util::metrics::ScopedEnable metrics_on;
    util::metrics::Counter& retry_counter =
        util::metrics::GetCounter("faults.sim.retries");
    const std::uint64_t retries_before = retry_counter.Value();

    const auto t0 = Clock::now();
    auto campaign = core::RunCampaign(circuit, fault_list, configs, options);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    report.points = campaign.Band().MakeSweep().PointCount();
    // One sweep per (config, fault), per config nominal, and per config
    // Monte-Carlo sample; each sweep is one MNA solve per grid point.
    const double sweeps = static_cast<double>(report.configs) *
                          static_cast<double>(report.faults + 1 + samples);
    const double solves = sweeps * static_cast<double>(report.points);

    RunResult r;
    r.spec = spec;
    r.wall_s = wall_s;
    r.solves_per_s = solves / wall_s;
    r.configs_per_s = static_cast<double>(report.configs) / wall_s;
    r.speedup = report.runs.empty()
                    ? 1.0
                    : report.runs.front().wall_s / wall_s;
    r.retries = retry_counter.Value() - retries_before;
    r.quarantined = campaign.QuarantinedCellCount();
    report.runs.push_back(r);
  }
  return report;
}

void WriteJson(const std::vector<CircuitReport>& reports,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"campaign_throughput\",\n";
  out << "  \"hardware_threads\": " << util::HardwareThreadCount() << ",\n";
  out << "  \"circuits\": [\n";
  for (std::size_t c = 0; c < reports.size(); ++c) {
    const auto& rep = reports[c];
    out << "    {\n";
    out << "      \"name\": \"" << rep.name << "\",\n";
    out << "      \"configs\": " << rep.configs << ",\n";
    out << "      \"faults\": " << rep.faults << ",\n";
    out << "      \"sweep_points\": " << rep.points << ",\n";
    out << "      \"mc_samples\": " << rep.samples << ",\n";
    out << "      \"runs\": [\n";
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
      const auto& r = rep.runs[i];
      out << "        {\"label\": \"" << r.spec.label
          << "\", \"threads\": " << r.spec.threads
          << ", \"cache_factorization\": "
          << (r.spec.cache ? "true" : "false") << ", \"lowrank\": "
          << (r.spec.lowrank ? "true" : "false") << ", \"batched\": "
          << (r.spec.batched ? "true" : "false") << ", \"wall_s\": " << r.wall_s
          << ", \"solves_per_s\": " << r.solves_per_s
          << ", \"configs_per_s\": " << r.configs_per_s
          << ", \"speedup_vs_baseline\": " << r.speedup
          << ", \"retries\": " << r.retries
          << ", \"quarantined_cells\": " << r.quarantined << "}"
          << (i + 1 < rep.runs.size() ? "," : "") << "\n";
    }
    out << "      ]\n";
    out << "    }" << (c + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main() {
  bench::PrintHeader("Campaign throughput: parallelism + factorization reuse",
                     "performance engineering (no paper artifact)");

  const std::size_t hw = util::HardwareThreadCount();
  std::vector<RunSpec> specs = {
      {"serial, no reuse", 1, false, false, false},
      {"serial, reuse, exact", 1, true, false, false},
      {"serial, reuse, unbatched", 1, true, true, false},
      {"serial, reuse", 1, true, true, true},
      {"2 threads, reuse", 2, true, true, true},
      {"8 threads, reuse", 8, true, true, true},
  };
  if (hw != 1 && hw != 2 && hw != 8) {
    specs.push_back(
        {std::to_string(hw) + " threads, reuse", hw, true, true, true});
  }

  std::vector<CircuitReport> reports;
  reports.push_back(BenchCircuit("biquad", 50, 48, specs));
  reports.push_back(BenchCircuit("cascade6", 25, 24, specs));

  util::Table t;
  t.SetHeader({"circuit", "run", "wall [s]", "solves/s", "configs/s",
               "speedup", "retries", "quar"});
  for (const auto& rep : reports) {
    for (const auto& r : rep.runs) {
      t.AddRow({rep.name, r.spec.label, util::FormatTrimmed(r.wall_s, 3),
                util::FormatTrimmed(r.solves_per_s, 0),
                util::FormatTrimmed(r.configs_per_s, 1),
                util::FormatTrimmed(r.speedup, 2) + "x",
                std::to_string(r.retries), std::to_string(r.quarantined)});
    }
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf("hardware threads: %zu\n", hw);

  WriteJson(reports, "BENCH_campaign.json");
  std::printf("wrote BENCH_campaign.json\n");
  return 0;
}
