// Experiment E10 — paper Graph 4: full (brute-force) versus partial DFT in
// terms of per-fault omega-detectability, with the headline averages.
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E10: full vs partial DFT",
                     "Graph 4 (w-detectability of full and partial DFT)");

  auto fixture = bench::PaperFixture::Make();
  const auto& campaign = fixture.campaign;
  core::DftOptimizer optimizer(fixture.circuit, campaign);
  auto part = optimizer.OptimizePartialDft();

  std::vector<double> full, partial;
  for (const auto& d : campaign.BestCase()) {
    full.push_back(d.omega_detectability);
  }
  for (const auto& d : campaign.BestCase(part.permitted_rows)) {
    partial.push_back(d.omega_detectability);
  }
  std::printf("%s\n",
              core::RenderOmegaBars(
                  campaign.Faults(),
                  {{"full DFT", full}, {"partial DFT", partial}},
                  "w-detectability: full vs partial DFT (paper Graph 4)")
                  .c_str());

  const double w_full = campaign.AverageOmegaDet();
  const double w_partial = campaign.AverageOmegaDet(part.permitted_rows);
  std::printf("Summary vs paper:\n");
  bench::PrintComparison("<w-det> full (brute force) DFT",
                         100.0 * bench::PaperReference::kBruteAvgOmegaDet,
                         100.0 * w_full);
  bench::PrintComparison("<w-det> partial DFT",
                         100.0 * bench::PaperReference::kPartialAvgOmegaDet,
                         100.0 * w_partial);
  std::printf(
      "\nShape check: both reach maximum coverage; the partial DFT's lower\n"
      "<w-det> is \"the price to be paid\" for fewer configurable opamps\n"
      "(reduced silicon area and performance impact).\n");
  return 0;
}
