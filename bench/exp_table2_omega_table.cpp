// Experiment E4 — paper Table 2: the omega-detectability table over all
// configurations, with the per-fault best configuration marked (the
// paper's black boxes).
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E4: w-detectability table",
                     "Table 2 (w-detectability per configuration and fault)");

  auto fixture = bench::PaperFixture::Make();
  std::printf("%s\n", core::RenderOmegaTable(fixture.campaign).c_str());

  std::printf(
      "Shape check: for every fault there is a test configuration with a\n"
      "higher w-detectability than the functional configuration's entry\n"
      "(the paper's core observation in Sec. 3.2):\n\n");
  auto omega = fixture.campaign.OmegaTable();
  std::size_t improved = 0;
  for (std::size_t j = 0; j < fixture.campaign.FaultCount(); ++j) {
    double best_new = 0.0;
    for (std::size_t i = 1; i < fixture.campaign.ConfigCount(); ++i) {
      best_new = std::max(best_new, omega[i][j]);
    }
    if (best_new > omega[0][j]) ++improved;
    std::printf("  %-6s C0: %5.1f%%   best new config: %5.1f%%  %s\n",
                fixture.campaign.Faults()[j].ShortLabel().c_str(),
                100.0 * omega[0][j], 100.0 * best_new,
                best_new > omega[0][j] ? "improved" : "(C0 already best)");
  }
  std::printf("\nFaults improved by reconfiguration: %zu / %zu\n", improved,
              fixture.campaign.FaultCount());
  return 0;
}
