// Experiment E9 — paper Section 4.3 + Table 4: configurable-opamp
// optimization (partial DFT).  Maps the minimal covers through Table 3,
// minimizes the configurable-opamp count, and prints the
// omega-detectability table restricted to the permitted configurations.
#include "common.hpp"

#include "util/strings.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E9: configurable-opamp optimization (partial DFT)",
                     "Sec. 4.3 + Table 4 (partial DFT implementation)");

  auto fixture = bench::PaperFixture::Make();
  const auto& campaign = fixture.campaign;
  core::DftOptimizer optimizer(fixture.circuit, campaign);
  auto part = optimizer.OptimizePartialDft();
  std::printf("%s\n",
              core::RenderPartialDft(part, campaign, fixture.circuit).c_str());

  // Table 4: the omega table restricted to the permitted configurations.
  std::printf("w-detectability of the permitted configurations "
              "(paper Table 4):\n");
  auto omega = campaign.OmegaTable();
  util::Table t;
  std::vector<std::string> header{"Conf"};
  for (const auto& f : campaign.Faults()) header.push_back(f.ShortLabel());
  t.SetHeader(std::move(header));
  for (std::size_t r : part.permitted_rows) {
    std::vector<std::string> row{core::RowName(campaign, r) + " (" +
                                 campaign.PerConfig()[r].config.BitString() +
                                 ")"};
    for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
      row.push_back(util::FormatTrimmed(100.0 * omega[r][j], 1));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s\n", t.Render().c_str());

  std::printf("Summary vs paper:\n");
  bench::PrintComparison("configurable opamps needed",
                         bench::PaperReference::kPartialOpamps,
                         static_cast<double>(part.opamps.size()), " opamps");
  bench::PrintComparison("permitted configurations", 4.0,
                         static_cast<double>(part.permitted_rows.size()),
                         " configs");
  bench::PrintComparison("<w-det> using all permitted configs",
                         100.0 * bench::PaperReference::kPartialAvgOmegaDet,
                         100.0 * part.usage_all.avg_omega_det);
  bench::PrintComparison("coverage of the partial DFT", 100.0,
                         100.0 * part.usage_all.coverage);
  return 0;
}
