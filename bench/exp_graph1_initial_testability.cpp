// Experiment E1 — paper Graph 1 + Section 2: testability of the *initial*
// (unmodified) biquadratic filter.  Fault-simulates the 20% deviations of
// every passive component in the functional configuration only and prints
// the per-fault omega-detectability bars, the fault coverage and <w-det>.
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E1: initial-filter testability evaluation",
                     "Graph 1 (w-det graph) and the Sec. 2 coverage numbers");

  auto fixture = bench::PaperFixture::Make();
  const auto& campaign = fixture.campaign;
  const std::size_t c0 = campaign.RowOf(core::ConfigVector(3));

  std::vector<double> initial;
  for (const auto& d : campaign.PerConfig()[c0].faults) {
    initial.push_back(d.omega_detectability);
  }
  std::printf("%s\n",
              core::RenderOmegaBars(campaign.Faults(), {{"initial", initial}},
                                    "w-detectability of the initial filter "
                                    "(paper Graph 1)")
                  .c_str());

  const double coverage = campaign.Coverage({c0});
  const double wdet = campaign.AverageOmegaDet({c0});
  std::printf("Summary vs paper:\n");
  bench::PrintComparison("fault coverage (functional configuration)",
                         100.0 * bench::PaperReference::kInitialCoverage,
                         100.0 * coverage);
  bench::PrintComparison("<w-det> (functional configuration)",
                         100.0 * bench::PaperReference::kInitialAvgOmegaDet,
                         100.0 * wdet);
  std::printf(
      "\nShape check: poor initial testability (low <w-det>, coverage far\n"
      "from 100%%) -- the motivation for the multi-configuration DFT.\n");
  return 0;
}
