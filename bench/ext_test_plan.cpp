// Experiment X5 — from metric to tester program: compile the campaign into
// a minimal multi-frequency test plan (the multifrequency ATPG view of the
// paper's refs [12][13]) and compare the plan under three scenarios:
//   (a) all configurations available (brute-force DFT),
//   (b) the Sec. 4.2 optimized configuration set S_opt,
//   (c) a magnitude-only tester (no phase measurement).
#include "common.hpp"
#include "core/test_plan.hpp"
#include "core/test_quality.hpp"
#include "util/strings.hpp"

namespace {

void Summarize(const char* name, const mcdft::core::TestPlan& plan) {
  std::printf("  %-28s %2zu measurements, %zu reconfigs, ~%ss, coverage %s%%\n",
              name, plan.steps.size(), plan.reconfigurations,
              mcdft::util::FormatTrimmed(plan.estimated_time_s, 2).c_str(),
              mcdft::util::FormatTrimmed(100.0 * plan.coverage, 1).c_str());
}

}  // namespace

int main() {
  using namespace mcdft;
  bench::PrintHeader("X5: multi-frequency test-plan generation",
                     "test-stimulus selection (paper Sec. 2, refs [12][13])");

  auto fixture = bench::PaperFixture::Make();
  core::DftOptimizer optimizer(fixture.circuit, fixture.campaign);

  // (a) Plan over every configuration.
  auto plan_all = core::GenerateTestPlan(fixture.campaign);
  std::printf("%s\n",
              core::RenderTestPlan(plan_all, fixture.campaign).c_str());

  // (b) Plan restricted to the optimized configuration set.
  auto sel = optimizer.OptimizeConfigurationCount();
  core::TestPlanOptions sopt_options;
  sopt_options.rows = sel.selected.rows.Variables();
  auto plan_sopt = core::GenerateTestPlan(fixture.campaign, sopt_options);
  std::printf("Plan restricted to S_opt = %s:\n%s\n",
              core::RowSetName(fixture.campaign, sel.selected.rows).c_str(),
              core::RenderTestPlan(plan_sopt, fixture.campaign).c_str());

  // (c) Magnitude-only tester.
  core::TestPlanOptions mag_options;
  mag_options.mode = core::MeasurementMode::kMagnitude;
  auto plan_mag = core::GenerateTestPlan(fixture.campaign, mag_options);

  std::printf("Scenario summary:\n");
  Summarize("vector tester, all configs", plan_all);
  Summarize("vector tester, S_opt", plan_sopt);
  Summarize("magnitude-only tester", plan_mag);
  if (!plan_mag.uncovered.empty()) {
    std::printf("  magnitude-only tester cannot cover:");
    for (const auto& f : plan_mag.uncovered) {
      std::printf(" %s", f.Label().c_str());
    }
    std::printf("  (phase-only deviations)\n");
  }
  // --- Monte-Carlo validation of the plan on the "tester floor" ---------
  std::printf("\nMonte-Carlo test quality of the all-config vector plan\n"
              "(in-tolerance spread +/-3%%, 64 good samples, 16 faulty\n"
              "samples per fault):\n\n");
  core::TestQualityOptions quality;
  auto report = core::EvaluateTestQuality(fixture.circuit, plan_all,
                                          fixture.fault_list,
                                          core::MeasurementMode::kComplex,
                                          quality);
  std::printf("%s", core::RenderTestQuality(report).c_str());

  std::printf(
      "\nReading: a handful of (configuration, frequency) measurements\n"
      "replaces full response sweeps; restricting to S_opt trades a\n"
      "little plan freedom for fewer reconfigurations; the phase\n"
      "measurement matters -- some faults are invisible to a\n"
      "magnitude-only tester -- and the margin-aware point selection\n"
      "keeps escapes low under process spread.\n");
  return 0;
}
