// Experiment E2 — paper Table 1: the configuration table of the
// DFT-modified biquad (8 configurations of the 3 selection lines, with the
// functional and transparent configurations identified).
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E2: configuration enumeration",
                     "Table 1 (configuration table)");

  core::DftCircuit circuit = circuits::BuildDftBiquad();
  auto space = circuit.Space();
  std::printf("%s\n", core::RenderConfigurationTable(space).c_str());

  std::printf("Configurable opamps (chain order):");
  for (const auto& name : circuit.ConfigurableOpamps()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nTotal configurations: %zu (2^%zu)\n",
              space.ConfigurationCount(), space.OpampCount());
  std::printf(
      "Non-transparent configurations used for passive-fault testing: %zu\n",
      space.AllNonTransparent().size());
  return 0;
}
