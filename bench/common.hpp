// Shared fixture for the paper-reproduction benches: the default biquad,
// the paper fault list, the campaign at the paper operating point, and the
// paper's published reference numbers for side-by-side reporting.
#pragma once

#include <cstdio>
#include <string>

#include "circuits/biquad.hpp"
#include "core/report.hpp"

namespace mcdft::bench {

/// Everything the experiment binaries need, computed once per process.
struct PaperFixture {
  core::DftCircuit circuit;
  std::vector<faults::Fault> fault_list;
  core::CampaignResult campaign;

  static PaperFixture Make() {
    core::DftCircuit circuit = circuits::BuildDftBiquad();
    auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
    auto campaign =
        core::RunCampaign(circuit, fault_list,
                          circuit.Space().AllNonTransparent(),
                          core::MakePaperCampaignOptions());
    return PaperFixture{std::move(circuit), std::move(fault_list),
                        std::move(campaign)};
  }
};

/// Paper reference values (Renovell et al. 1998) for the comparison lines.
struct PaperReference {
  static constexpr double kInitialCoverage = 0.25;        // Sec. 2
  static constexpr double kInitialAvgOmegaDet = 0.125;    // Graph 1
  static constexpr double kDftCoverage = 1.0;             // Sec. 3.2
  static constexpr double kBruteAvgOmegaDet = 0.683;      // Graph 2
  static constexpr double kOptimizedAvgOmegaDet = 0.325;  // Sec. 4.2
  static constexpr std::size_t kMinimalSetSize = 2;       // {C2, C5}
  static constexpr std::size_t kPartialOpamps = 2;        // Sec. 4.3
  static constexpr double kPartialAvgOmegaDet = 0.525;    // Table 4
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s (Renovell/Azais/Bertrand, DATE 1998)\n",
              paper_artifact.c_str());
  std::printf("================================================================\n\n");
}

inline void PrintComparison(const std::string& metric, double paper,
                            double measured, const char* unit = "%") {
  std::printf("  %-46s paper: %6.1f%s   measured: %6.1f%s\n", metric.c_str(),
              paper, unit, measured, unit);
}

}  // namespace mcdft::bench
