// Experiment E8 — paper Table 3: the configuration -> opamp mapping that
// turns the xi expression over configurations into the xi* expression over
// configurable opamps (Sec. 4.3).
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E8: configuration -> opamp mapping",
                     "Table 3 (mapping table)");

  core::DftCircuit circuit = circuits::BuildDftBiquad();
  auto space = circuit.Space();
  std::printf("%s\n", core::RenderMappingTable(space).c_str());

  std::printf(
      "Reading: a configuration is replaced by the product of the opamps\n"
      "it drives into follower mode; configurations sharing opamps absorb\n"
      "each other after substitution, which is what makes partial DFT\n"
      "solutions possible.\n\n");

  // Census: how many configurations each opamp participates in.
  for (std::size_t k = 0; k < space.OpampCount(); ++k) {
    std::size_t uses = 0;
    for (std::size_t i = 0; i < space.ConfigurationCount(); ++i) {
      if (space.At(i).SelectionOf(k)) ++uses;
    }
    std::printf("  %s is in follower mode in %zu of %zu configurations\n",
                space.OpampNames()[k].c_str(), uses,
                space.ConfigurationCount());
  }
  return 0;
}
