// Experiment E7 — paper Section 4.2 + Graph 3: configuration-count
// optimization.  Selects the minimal configuration set, breaks ties with
// the 3rd-order omega-detectability requirement, and prints the per-fault
// comparison between no DFT, brute-force DFT and the optimized set.
#include "common.hpp"
#include "core/bist.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E7: configuration-number optimization",
                     "Sec. 4.2 + Graph 3 (optimized DFT application)");

  auto fixture = bench::PaperFixture::Make();
  const auto& campaign = fixture.campaign;
  core::DftOptimizer optimizer(fixture.circuit, campaign);
  auto sel = optimizer.OptimizeConfigurationCount();
  std::printf("%s\n", core::RenderSelection(sel, campaign).c_str());

  const std::size_t c0 = campaign.RowOf(core::ConfigVector(3));
  std::vector<double> initial, brute, optimized;
  for (const auto& d : campaign.PerConfig()[c0].faults) {
    initial.push_back(d.omega_detectability);
  }
  for (const auto& d : campaign.BestCase()) {
    brute.push_back(d.omega_detectability);
  }
  for (const auto& d : campaign.BestCase(sel.selected.rows.Variables())) {
    optimized.push_back(d.omega_detectability);
  }
  std::printf("%s\n", core::RenderOmegaBars(
                          campaign.Faults(),
                          {{"no DFT", initial},
                           {"brute force", brute},
                           {"optimized", optimized}},
                          "w-detectability, per fault (paper Graph 3)")
                          .c_str());

  std::printf("Summary vs paper:\n");
  bench::PrintComparison("minimal set size",
                         bench::PaperReference::kMinimalSetSize,
                         static_cast<double>(sel.selected.configs.size()),
                         " configs");
  bench::PrintComparison("<w-det> of S_opt",
                         100.0 * bench::PaperReference::kOptimizedAvgOmegaDet,
                         100.0 * sel.selected.avg_omega_det);
  // BIST sequencing of the optimized set (the paper's Sec. 4.2 on-chip
  // generation motivation): order the selected configurations to minimize
  // selection-line toggles from the power-on state.
  auto schedule = core::ScheduleConfigurations(sel.selected.configs);
  std::printf("BIST schedule for S_opt:");
  for (const auto& cv : schedule.order) {
    std::printf(" %s(%s)", cv.Name().c_str(), cv.BitString().c_str());
  }
  std::printf("\n  selection-line toggles: %zu (index order would need %zu)\n",
              schedule.toggles, schedule.naive_toggles);

  std::printf(
      "\nShape check: the optimized set keeps 100%% coverage with far fewer\n"
      "configurations, paying with a lower <w-det> than brute force\n"
      "(\"the cost to be paid for a short test procedure\").\n");
  return 0;
}
