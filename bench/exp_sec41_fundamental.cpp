// Experiment E6 — paper Section 4.1: the fundamental requirement.  Builds
// the covering expression xi from the detectability matrix, extracts the
// essential configurations, reduces the matrix (Fig. 6) and expands to the
// sum-of-products of all minimal covering sets.
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E6: fundamental requirement (covering problem)",
                     "Sec. 4.1 (xi expression, essentials, Fig. 6, SOP)");

  auto fixture = bench::PaperFixture::Make();
  core::DftOptimizer optimizer(fixture.circuit, fixture.campaign);
  auto fundamental = optimizer.SolveFundamental();
  std::printf("%s\n",
              core::RenderFundamental(fundamental, fixture.campaign).c_str());

  std::printf("Minimal covering sets (each keeps maximum fault coverage):\n");
  for (const auto& cover : fundamental.minimal_covers) {
    auto scored = optimizer.Score(cover);
    std::printf("  %-22s  configs: %zu  coverage: %5.1f%%  <w-det>: %5.1f%%\n",
                core::RowSetName(fixture.campaign, cover).c_str(),
                cover.LiteralCount(), 100.0 * scored.coverage,
                100.0 * scored.avg_omega_det);
  }
  std::printf(
      "\nShape check vs paper: essential configuration(s) exist, the\n"
      "reduced matrix is small, and several alternative minimal covers\n"
      "remain for the 2nd-order requirement to choose between\n"
      "(the paper finds {C1,C2} and {C2,C5} with essential C2).\n");
  return 0;
}
