// Experiment E3 — paper Figure 5: the boolean fault detectability matrix
// d_ij of the DFT-modified biquad over configurations C0..C6.
#include "common.hpp"

int main() {
  using namespace mcdft;
  bench::PrintHeader("E3: fault detectability matrix",
                     "Figure 5 (fault detectability matrix d_ij)");

  auto fixture = bench::PaperFixture::Make();
  std::printf("%s\n",
              core::RenderDetectabilityMatrix(fixture.campaign).c_str());

  // Column census: every fault must be detectable in >= 1 configuration.
  auto matrix = fixture.campaign.DetectabilityMatrix();
  std::size_t covered = 0;
  for (std::size_t j = 0; j < fixture.campaign.FaultCount(); ++j) {
    for (std::size_t i = 0; i < fixture.campaign.ConfigCount(); ++i) {
      if (matrix[i][j]) {
        ++covered;
        break;
      }
    }
  }
  std::printf("Faults covered by at least one configuration: %zu / %zu\n",
              covered, fixture.campaign.FaultCount());
  bench::PrintComparison("maximum fault coverage",
                         100.0 * bench::PaperReference::kDftCoverage,
                         100.0 * fixture.campaign.Coverage());
  std::printf(
      "\nShape check (paper Sec. 3.2): every fault that the functional\n"
      "configuration misses is caught by at least one new configuration.\n");
  return 0;
}
